package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"bigindex/internal/core"
	"bigindex/internal/datagen"
)

func testServer(t *testing.T) (*Server, *datagen.Dataset) {
	t.Helper()
	ds := datagen.Generate(datagen.Options{
		Name: "srv", Entities: 1200, Terms: 100, LeafTypes: 8, Seed: 99,
	})
	opt := core.DefaultBuildOptions()
	opt.Search.SampleCount = 30
	idx, err := core.Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		t.Fatal(err)
	}
	return New(idx, ds.Ont, Options{DMax: 3, BlockSize: 64}), ds
}

func get(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]interface{}
	if strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", path, err, rec.Body.String())
		}
	}
	return rec, body
}

func popularTerm(ds *datagen.Dataset) string {
	best := ""
	bestC := 0
	for _, l := range ds.Graph.DistinctLabels() {
		if c := ds.Graph.LabelCount(l); c > bestC {
			bestC = c
			best = ds.Graph.Dict().Name(l)
		}
	}
	return best
}

func TestHealthAndStats(t *testing.T) {
	s, _ := testServer(t)
	rec, _ := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	rec, body := get(t, s, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	if body["graph"] == nil || body["layers"] == nil {
		t.Fatalf("stats body: %v", body)
	}
}

func TestQueryEndpoint(t *testing.T) {
	s, ds := testServer(t)
	kw := popularTerm(ds)

	for _, algo := range []string{"blinks", "bkws", "bidir", "rclique"} {
		rec, body := get(t, s, "/query?q="+kw+"&algo="+algo+"&k=5")
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", algo, rec.Code, rec.Body.String())
		}
		if body["algorithm"] != algo {
			t.Fatalf("%s: echoed algorithm %v", algo, body["algorithm"])
		}
		cnt, _ := body["count"].(float64)
		if cnt < 1 {
			t.Fatalf("%s: no matches for the most popular term", algo)
		}
		if cnt > 5 {
			t.Fatalf("%s: k not honored: %v", algo, cnt)
		}
	}

	// Direct mode, and a free-text (tokenized) keyword.
	rec, body := get(t, s, "/query?q="+kw+"&direct=1")
	if rec.Code != http.StatusOK || body["direct"] != true {
		t.Fatalf("direct: %d %v", rec.Code, body)
	}
	tokens := strings.Split(kw, "/")
	free := tokens[len(tokens)-1]
	rec, _ = get(t, s, "/query?q="+free)
	if rec.Code != http.StatusOK {
		t.Fatalf("free-text: %d %s", rec.Code, rec.Body.String())
	}
}

func TestQueryErrors(t *testing.T) {
	s, _ := testServer(t)
	rec, body := get(t, s, "/query")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("missing q: %d", rec.Code)
	}
	if body["error"] == nil {
		t.Fatal("missing error payload")
	}
	rec, _ = get(t, s, "/query?q=zzzznotaterm")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unresolvable keyword: %d", rec.Code)
	}
	rec, _ = get(t, s, "/query?q=a&algo=nonsense")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad algo: %d", rec.Code)
	}
}

func TestExplainAndComplete(t *testing.T) {
	s, ds := testServer(t)
	kw := popularTerm(ds)
	rec, body := get(t, s, "/explain?q="+kw)
	if rec.Code != http.StatusOK {
		t.Fatalf("explain: %d %s", rec.Code, rec.Body.String())
	}
	layers, _ := body["layers"].([]interface{})
	if len(layers) == 0 {
		t.Fatal("explain returned no layers")
	}

	rec, body = get(t, s, "/complete?prefix=term&limit=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("complete: %d", rec.Code)
	}
	comps, _ := body["completions"].([]interface{})
	if len(comps) == 0 || len(comps) > 5 {
		t.Fatalf("completions: %v", comps)
	}
}

// TestConcurrentQueries exercises the shared-evaluator path under load
// (run with -race in CI).
func TestConcurrentQueries(t *testing.T) {
	s, ds := testServer(t)
	kw := popularTerm(ds)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			algo := []string{"blinks", "bkws"}[i%2]
			req := httptest.NewRequest(http.MethodGet, "/query?q="+kw+"&algo="+algo, nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				errs <- rec.Body.String()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("concurrent query failed: %s", e)
	}
}

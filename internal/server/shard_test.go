package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bigindex/internal/graph"
)

// TestShardParamValidation: &shards= follows the strict parameter
// conventions — malformed and negative values are client errors, asking a
// non-shardable algorithm to shard is a client error, and values above
// GOMAXPROCS are clamped with a note rather than rejected.
func TestShardParamValidation(t *testing.T) {
	s, ds := testServer(t)
	kw := popularTerm(ds)

	for _, bad := range []string{
		"/query?q=" + kw + "&algo=bkws&shards=abc",
		"/query?q=" + kw + "&algo=bkws&shards=-1",
		"/query?q=" + kw + "&algo=blinks&shards=2",
		"/query?q=" + kw + "&algo=rclique&shards=2",
		"/query?q=" + kw + "&shards=2", // default algo is blinks
	} {
		rec, body := get(t, s, bad)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, rec.Code)
		}
		if body["error"] == nil {
			t.Errorf("%s: missing error payload", bad)
		}
	}

	// Explicit 0 and 1 are valid everywhere: they select the sequential
	// path, which every algorithm has.
	for _, ok := range []string{
		"/query?q=" + kw + "&algo=blinks&shards=0",
		"/query?q=" + kw + "&algo=rclique&shards=1",
		"/query?q=" + kw + "&algo=bkws&shards=2",
		"/query?q=" + kw + "&algo=bidir&shards=2",
	} {
		rec, _ := get(t, s, ok)
		if rec.Code != http.StatusOK {
			t.Errorf("%s: status %d: %s", ok, rec.Code, rec.Body.String())
		}
	}

	// Oversubscription is clamped, noted, and still succeeds.
	rec, body := get(t, s, "/query?q="+kw+"&algo=bkws&shards=1000&nocache=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("oversubscribed: %d: %s", rec.Code, rec.Body.String())
	}
	found := false
	if notes, _ := body["notes"].([]interface{}); notes != nil {
		for _, n := range notes {
			if s, _ := n.(string); strings.Contains(s, "clamped") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no clamping note in response: %v", body["notes"])
	}
}

// TestShardOptionsClamped: a negative Options.Shards is defensive-clamped
// to sequential and an oversubscribed one to GOMAXPROCS at construction.
func TestShardOptionsClamped(t *testing.T) {
	s, ds := testServer(t) // Shards: 0
	if s.opt.Shards != 0 {
		t.Fatalf("default Shards = %d", s.opt.Shards)
	}
	s2 := New(s.Index(), ds.Ont, Options{DMax: 3, BlockSize: 64, Shards: -5})
	if s2.opt.Shards != 0 {
		t.Fatalf("negative Shards clamped to %d, want 0", s2.opt.Shards)
	}
	s3 := New(s.Index(), ds.Ont, Options{DMax: 3, BlockSize: 64, Shards: 10_000})
	if maxp := runtime.GOMAXPROCS(0); s3.opt.Shards != maxp {
		t.Fatalf("oversubscribed Shards = %d, want GOMAXPROCS (%d)", s3.opt.Shards, maxp)
	}
}

// TestShardAnswerEquality is the serving-layer contract: for bkws and
// bidir, every worker count returns matches identical to the sequential
// path — same roots, same scores, same witness nodes, same order.
func TestShardAnswerEquality(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	s, ds := testServer(t)
	kw := popularTerm(ds)

	for _, algo := range []string{"bkws", "bidir"} {
		_, want := get(t, s, "/query?q="+kw+"&algo="+algo+"&k=10&nocache=1&shards=0")
		for _, workers := range []int{1, 2, 4, 8} {
			path := fmt.Sprintf("/query?q=%s&algo=%s&k=10&nocache=1&shards=%d", kw, algo, workers)
			rec, got := get(t, s, path)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s: status %d: %s", path, rec.Code, rec.Body.String())
			}
			if fmt.Sprint(got["matches"]) != fmt.Sprint(want["matches"]) {
				t.Fatalf("%s@%d: sharded answers differ from sequential\ngot:  %v\nwant: %v",
					algo, workers, got["matches"], want["matches"])
			}
		}
	}
}

// TestShardStatsAndDebugIndex: /stats reports the shard block (planned
// only after a sharded query ran) and /debug/index reports the partition
// layout with min/max block sizes.
func TestShardStatsAndDebugIndex(t *testing.T) {
	base, ds := testServer(t)
	s := New(base.Index(), ds.Ont, Options{DMax: 3, BlockSize: 64, Debug: DebugOptions{Endpoints: true}})
	kw := popularTerm(ds)

	_, stats := get(t, s, "/stats")
	sh, _ := stats["shard"].(map[string]interface{})
	if sh == nil {
		t.Fatalf("no shard block in /stats: %v", stats)
	}
	if sh["planned"] != false {
		t.Fatalf("shard plan exists before any sharded query: %v", sh)
	}
	if gp, _ := sh["gomaxprocs"].(float64); int(gp) != runtime.GOMAXPROCS(0) {
		t.Fatalf("gomaxprocs = %v", sh["gomaxprocs"])
	}

	// direct=1 pins evaluation to the data graph, so the plan /stats
	// describes (Blocks/EdgeCut are the data graph's) is the one built.
	if rec, _ := get(t, s, "/query?q="+kw+"&algo=bkws&shards=1&nocache=1&direct=1"); rec.Code != http.StatusOK {
		t.Fatalf("sharded query: %d", rec.Code)
	}
	_, stats = get(t, s, "/stats")
	sh, _ = stats["shard"].(map[string]interface{})
	if sh["planned"] != true {
		t.Fatalf("shard plan not reported after a sharded query: %v", sh)
	}
	if b, _ := sh["blocks"].(float64); b < 1 {
		t.Fatalf("blocks = %v", sh["blocks"])
	}
	if n, _ := sh["plans"].(float64); n < 1 {
		t.Fatalf("plans = %v", sh["plans"])
	}

	_, dbg := get(t, s, "/debug/index")
	part, _ := dbg["partition"].(map[string]interface{})
	if part == nil {
		t.Fatalf("no partition block in /debug/index: %v", dbg)
	}
	blocks, _ := part["blocks"].(float64)
	minB, _ := part["min_block"].(float64)
	maxB, _ := part["max_block"].(float64)
	if blocks < 1 || minB < 1 || maxB < minB || maxB > 64 {
		t.Fatalf("implausible partition block: %v", part)
	}
	if tgt, _ := part["target_block_size"].(float64); int(tgt) != 64 {
		t.Fatalf("target_block_size = %v", part["target_block_size"])
	}
}

// TestShardMetrics: sharded queries surface in the bigindex_shard_*
// metric family and the workers gauge reflects the configured default.
func TestShardMetrics(t *testing.T) {
	base, ds := testServer(t)
	s := New(base.Index(), ds.Ont, Options{DMax: 3, BlockSize: 64, Shards: 1})
	kw := popularTerm(ds)
	if rec, _ := get(t, s, "/query?q="+kw+"&algo=bkws&nocache=1"); rec.Code != http.StatusOK {
		t.Fatalf("query: %d", rec.Code)
	}
	rec, _ := get(t, s, "/metrics")
	text := rec.Body.String()
	for _, want := range []string{
		`bigindex_shard_queries_total{algo="bkws",workers="1"} 1`,
		"bigindex_shard_workers 1",
		"bigindex_shard_tasks_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q", want)
		}
	}
}

// TestShardMutateReloadRace is the -race stress gate: concurrent sharded
// queries interleave with /admin/edges mutation batches and /admin/reload
// hot swaps. Every query must come back 200 (each request resolves graph,
// plan, and evaluator through one atomically-loaded bundle), and after
// quiescing the sharded answers must be byte-identical to sequential on
// the final index.
func TestShardMutateReloadRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	s, ds := testServer(t)
	NewMutator(s, 0, MutatorOptions{}) // nil WAL: in-memory mutation only
	// Reload recomputes the hierarchy over the *live* (mutated) graph,
	// mirroring bigindexd's WAL deployment wiring.
	NewReloader(s, ReloaderOptions{Source: func(context.Context) (*graph.Graph, error) {
		return s.Index().Data(), nil
	}})
	kw := popularTerm(ds)

	deadline := time.Now().Add(2 * time.Second)
	var wg sync.WaitGroup
	var failures atomic.Int32

	// Query workers: sharded bkws and bidir, cache bypassed so every
	// request exercises the coordinator against the live index.
	for _, algo := range []string{"bkws", "bidir"} {
		wg.Add(1)
		go func(algo string) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				rec, _ := get(t, s, "/query?q="+kw+"&algo="+algo+"&shards=4&k=5&nocache=1")
				if rec.Code != http.StatusOK {
					failures.Add(1)
					t.Errorf("%s sharded query during churn: %d: %s", algo, rec.Code, rec.Body.String())
					return
				}
			}
		}(algo)
	}

	// Mutator: applies a valid edge flip against the graph version it
	// loaded; a concurrent reload can invalidate the pick, which the
	// admission layer rejects with a client error — that's fine, only
	// 5xx would indicate torn state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			g := s.Index().Data()
			es := g.Edges()
			if len(es) == 0 {
				return
			}
			e := es[len(es)/2]
			rec, _ := postJSON(t, s, "/admin/edges", mutationBody(nil, &e), nil)
			if rec.Code >= 500 {
				failures.Add(1)
				t.Errorf("mutation: %d: %s", rec.Code, rec.Body.String())
				return
			}
			rec, _ = postJSON(t, s, "/admin/edges", mutationBody(&e, nil), nil)
			if rec.Code >= 500 {
				failures.Add(1)
				t.Errorf("mutation: %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	}()

	// Reloader: full hierarchy rebuild + atomic swap, concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			rec, _ := post(t, s, "/admin/reload")
			if rec.Code >= 500 {
				failures.Add(1)
				t.Errorf("reload: %d: %s", rec.Code, rec.Body.String())
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	wg.Wait()
	if failures.Load() > 0 {
		t.Fatal("stress run had failures")
	}

	// Quiesced equivalence: on the settled index, sharded == sequential.
	for _, algo := range []string{"bkws", "bidir"} {
		_, want := get(t, s, "/query?q="+kw+"&algo="+algo+"&k=10&nocache=1&shards=0")
		for _, workers := range []int{1, 4} {
			path := fmt.Sprintf("/query?q=%s&algo=%s&k=10&nocache=1&shards=%d", kw, algo, workers)
			_, got := get(t, s, path)
			if fmt.Sprint(got["matches"]) != fmt.Sprint(want["matches"]) {
				t.Fatalf("%s@%d after churn: answers differ from sequential\ngot:  %v\nwant: %v",
					algo, workers, got["matches"], want["matches"])
			}
		}
	}
}

package shard

import (
	"context"
	"sync"

	"bigindex/internal/graph"
	"bigindex/internal/search"
)

// Mode selects which sequential semantics the sharded execution mirrors.
type Mode int

const (
	// ModeBKWS shards backward keyword search (bkws).
	ModeBKWS Mode = iota
	// ModeBidir shards bidirectional expansion (bidir).
	ModeBidir
)

func (m Mode) name() string {
	if m == ModeBidir {
		return "bidir"
	}
	return "bkws"
}

// Algorithm is the search.Algorithm adapter: it plugs sharded execution
// into the evaluator exactly where the sequential algorithm would sit, so
// hierarchical evaluation (summary layers, specialization, generation)
// works unchanged — only the per-layer Search runs scatter-gather.
type Algorithm struct {
	mode Mode
	dmax int
	opt  Options

	mu    sync.Mutex
	plans map[*graph.Graph]*Plan // fallback plan cache when opt.Cache is nil
}

// New returns a sharded algorithm for mode with distance bound dmax.
func New(mode Mode, dmax int, opt Options) *Algorithm {
	if dmax < 1 {
		dmax = 1
	}
	if opt.Workers < 1 {
		opt.Workers = 1
	}
	return &Algorithm{mode: mode, dmax: dmax, opt: opt, plans: map[*graph.Graph]*Plan{}}
}

// Name implements search.Algorithm. The sharded variant keeps the
// sequential name: it implements the same semantics with byte-identical
// answers, so cache keys and per-algorithm metrics stay unified (a cached
// sequential result is a valid sharded result and vice versa).
func (a *Algorithm) Name() string { return a.mode.name() }

// DMax returns the configured distance bound.
func (a *Algorithm) DMax() int { return a.dmax }

// Workers returns the configured executor pool size.
func (a *Algorithm) Workers() int { return a.opt.Workers }

// Prepare implements search.Algorithm: resolve (or build) the graph's
// plan and wire a coordinator over a shard server — the Options.Server
// factory's choice (remote peers, in stage 2) or the in-process Local.
func (a *Algorithm) Prepare(g *graph.Graph) (search.Prepared, error) {
	plan := a.planFor(g)
	var srv ShardServer
	if a.opt.Server != nil {
		srv = a.opt.Server(plan)
	}
	if srv == nil {
		srv = NewLocal(plan)
	}
	return &prepared{
		algo: a,
		coor: NewCoordinator(plan, NewExecutor(a.opt.Workers), srv, a.opt.Metrics),
	}, nil
}

func (a *Algorithm) planFor(g *graph.Graph) *Plan {
	if a.opt.Cache != nil {
		return a.opt.Cache.For(g)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if p, ok := a.plans[g]; ok {
		return p
	}
	p := NewPlanner(a.opt).PlanGraph(g)
	a.plans[g] = p
	return p
}

// NewGeneration implements search.Algorithm; sharded bkws/bidir share the
// rooted generation step with their sequential counterparts.
func (a *Algorithm) NewGeneration(data *graph.Graph, q []graph.Label, opt search.GenOptions) search.Generation {
	return search.NewRootedGeneration(data, q, a.dmax, nil, opt)
}

type prepared struct {
	algo *Algorithm
	coor *Coordinator
}

// Search implements search.Prepared.
func (p *prepared) Search(q []graph.Label, k int) ([]search.Match, error) {
	return p.SearchCtx(context.Background(), q, k)
}

// SearchCtx implements search.Prepared with the same degraded-partials
// contract as the sequential algorithms: on cancellation the matches
// found so far come back, sorted and truncated, with the context's cause.
func (p *prepared) SearchCtx(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
	if p.algo.mode == ModeBidir {
		return p.coor.SearchBidir(ctx, q, k, p.algo.dmax)
	}
	return p.coor.SearchBKWS(ctx, q, k, p.algo.dmax)
}

package shard

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"

	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/search"
)

// queryID hands out coordinator-chosen query ids; shard servers key their
// per-query state by them.
var queryID atomic.Uint64

// Coordinator drives the level-synchronous scatter-gather over one plan.
// It owns the global view the shards deliberately lack: which (keyword,
// block) slots still have work, the portal messages routed between
// blocks, the per-root Σdist bookkeeping, and the top-k early-stop bound.
// Everything it learns arrives through ExpandResponse/VerifyResponse —
// never by reading shard memory — so swapping Local for a network
// ShardServer changes no coordinator logic.
type Coordinator struct {
	plan *Plan
	exec *Executor
	srv  ShardServer
	met  *Metrics
}

// NewCoordinator wires a coordinator over plan, dispatching through exec
// to srv. met may be nil.
func NewCoordinator(plan *Plan, exec *Executor, srv ShardServer, met *Metrics) *Coordinator {
	return &Coordinator{plan: plan, exec: exec, srv: srv, met: met}
}

// fleet is the coordinator-side state of one query's expansion rounds,
// shared by the bkws and bidir drivers.
type fleet struct {
	c   *Coordinator
	qid uint64
	nk  int
	nb  int
	// mirror duplicates the shards' settled-distance rows, built purely
	// from Accepted/Next reports: the coordinator's own copy for Σdist
	// assembly and outbox pruning (in stage 2 there is no shard memory to
	// peek at, so the mirror is the design, not a redundancy).
	mirror  [][]int32
	counts  [][]uint8   // per-block per-member settled-keyword counts (bkws)
	inject  [][]graph.V // pending portal injections per (kw, block) slot
	hasNext []bool      // shard holds a local frontier for the slot

	workerWork   []int64
	expanded     int
	portal       int
	tasks        int
	rounds       int
	frontierPeak int
}

func (c *Coordinator) newFleet(qid uint64, nk int) *fleet {
	nb := c.plan.NumBlocks()
	return &fleet{
		c: c, qid: qid, nk: nk, nb: nb,
		mirror:     make([][]int32, nk*nb),
		inject:     make([][]graph.V, nk*nb),
		hasNext:    make([]bool, nk*nb),
		workerWork: make([]int64, c.exec.Workers()),
	}
}

func (f *fleet) mirrorRow(kw, block int) []int32 {
	slot := kw*f.nb + block
	if f.mirror[slot] == nil {
		row := make([]int32, len(f.c.plan.blocks[block].members))
		for i := range row {
			row[i] = -1
		}
		f.mirror[slot] = row
	}
	return f.mirror[slot]
}

func (f *fleet) seed(kw int, byBlock map[int][]graph.V) {
	for b, seeds := range byBlock {
		f.inject[kw*f.nb+b] = seeds
	}
}

// buildRequests collects the (keyword, block) slots with pending work
// into one round's requests, in slot order (determinism of dispatch order
// is not needed for correctness — responses are merged set-wise — but it
// keeps traces readable).
func (f *fleet) buildRequests(lvl int32, dmax int) []*ExpandRequest {
	var reqs []*ExpandRequest
	for slot := 0; slot < f.nk*f.nb; slot++ {
		if len(f.inject[slot]) == 0 && !f.hasNext[slot] {
			continue
		}
		reqs = append(reqs, &ExpandRequest{
			Query:  f.qid,
			Kw:     slot / f.nb,
			Block:  slot % f.nb,
			Level:  lvl,
			Inject: f.inject[slot],
			Expand: int(lvl) < dmax,
		})
		f.inject[slot] = nil
		f.hasNext[slot] = false
	}
	return reqs
}

// runRound dispatches one round across the executor and returns the
// responses. Per-worker expansion tallies land in workerWork[worker] —
// each worker writes only its own slot, so no lock.
func (f *fleet) runRound(ctx context.Context, reqs []*ExpandRequest) []*ExpandResponse {
	f.rounds++
	f.tasks += len(reqs)
	resps := make([]*ExpandResponse, len(reqs))
	f.c.exec.Map(len(reqs), func(i, worker int) {
		resps[i] = f.c.srv.Expand(ctx, reqs[i])
		f.workerWork[worker] += int64(resps[i].Expanded)
	})
	return resps
}

// route queues a response's portal crossings for the owning blocks,
// dropping messages whose target the coordinator already saw settle.
func (f *fleet) route(resp *ExpandResponse) {
	for _, msg := range resp.Outbox {
		slot := resp.Kw*f.nb + int(msg.Block)
		if row := f.mirror[slot]; row != nil && row[f.c.plan.pos[msg.V]] != -1 {
			continue
		}
		f.inject[slot] = append(f.inject[slot], msg.V)
		f.portal++
	}
}

// finish flushes the fleet's counters to the ambient ledger/span/metrics.
func (f *fleet) finish(ctx context.Context, algo string, roots int, earlyStop bool) {
	led := obs.LedgerFromContext(ctx)
	led.AddExpanded(int64(f.expanded))
	led.NoteFrontier(int64(f.frontierPeak))
	for worker, n := range f.workerWork {
		led.AddShardWork(worker, n)
	}
	if sp := obs.SpanFromContext(ctx); sp != nil {
		sp.SetAttr("shard_workers", f.c.exec.Workers()).
			SetAttr("shard_blocks", f.nb).
			SetAttr("shard_rounds", f.rounds).
			SetAttr("shard_tasks", f.tasks).
			SetAttr("shard_portal_msgs", f.portal).
			SetAttr("roots", roots).
			SetAttr("early_topk", earlyStop)
	}
	if m := f.c.met; m != nil {
		m.Queries.With(algo, strconv.Itoa(f.c.exec.Workers())).Inc()
		m.Tasks.Add(int64(f.tasks))
		m.Portal.Add(int64(f.portal))
		m.Rounds.Observe(float64(f.rounds))
	}
}

// SearchBKWS is the sharded backward keyword search: every keyword's
// multi-source backward BFS decomposed per (keyword × block), stitched at
// portals, with the coordinator completing roots (vertices settled by all
// keywords) from its Σdist bookkeeping. Byte-identical to bkws.SearchCtx:
// the rounds compute the same exact distances, and the strict stop bound
// admits exactly the exhaustive top-k prefix.
func (c *Coordinator) SearchBKWS(ctx context.Context, q []graph.Label, k, dmax int) ([]search.Match, error) {
	if len(q) == 0 {
		return nil, fmt.Errorf("bkws: empty query")
	}
	seeds := make([]map[int][]graph.V, len(q))
	for i, l := range q {
		seeds[i] = c.plan.seedsByBlock(l)
		if seeds[i] == nil {
			return nil, nil // a keyword with no occurrences has no answers
		}
	}
	qid := queryID.Add(1)
	c.srv.BeginQuery(qid, len(q))
	defer c.srv.EndQuery(qid)

	f := c.newFleet(qid, len(q))
	for i := range q {
		f.seed(i, seeds[i])
	}

	nk := len(q)
	var matches []search.Match
	// settle records one reported settlement in the mirror and completes
	// the root once every keyword has settled it. counts is bounded by
	// len(q) per member, so uint8 is ample (queries are a handful of
	// keywords).
	f.counts = make([][]uint8, f.nb)
	settle := func(kw, block int, v graph.V, lvl int32) {
		p := c.plan.pos[v]
		f.mirrorRow(kw, block)[p] = lvl
		if f.counts[block] == nil {
			f.counts[block] = make([]uint8, len(c.plan.blocks[block].members))
		}
		f.counts[block][p]++
		if int(f.counts[block][p]) != nk {
			return
		}
		dists := make([]int, nk)
		sum := 0
		for kw2 := 0; kw2 < nk; kw2++ {
			d := int(f.mirror[kw2*f.nb+block][p])
			dists[kw2] = d
			sum += d
		}
		matches = append(matches, search.Match{Root: v, Dists: dists, Score: float64(sum)})
	}

	var err error
	earlyStop := false
	for lvl := int32(0); int(lvl) <= dmax; lvl++ {
		if ctx.Err() != nil {
			err = context.Cause(ctx)
			break
		}
		reqs := f.buildRequests(lvl, dmax)
		if len(reqs) == 0 {
			break
		}
		roundFrontier := 0
		for _, resp := range f.runRound(ctx, reqs) {
			for _, v := range resp.Accepted {
				settle(resp.Kw, resp.Block, v, lvl)
			}
			for _, v := range resp.Next {
				settle(resp.Kw, resp.Block, v, lvl+1)
			}
			if len(resp.Next) > 0 {
				f.hasNext[resp.Kw*f.nb+resp.Block] = true
			}
			roundFrontier += len(resp.Accepted) + len(resp.Next)
			f.expanded += resp.Expanded
			f.route(resp)
		}
		if roundFrontier > f.frontierPeak {
			f.frontierPeak = roundFrontier
		}
		// Every settlement still pending (routed injections at lvl+1,
		// expansions beyond) has level >= lvl+1, so an undiscovered root
		// completes with score >= lvl+1: once the k-th answer is strictly
		// better, nothing out there can displace the prefix.
		if k > 0 && len(matches) >= k {
			search.SortMatches(matches)
			if matches[k-1].Score < float64(lvl+1) {
				earlyStop = true
				break
			}
		}
	}

	search.SortMatches(matches)
	matches = search.Truncate(matches, k)
	// Witness nodes are presentational (Match.Key ignores them); assemble
	// them only for the returned matches, in parallel — same deterministic
	// smallest-ID BFS as the sequential path, just not wasted on answers
	// that truncation drops.
	c.exec.Map(len(matches), func(i, _ int) {
		m := &matches[i]
		m.Nodes = search.WitnessNodes(c.plan.g, m.Root, q, m.Dists)
	})
	f.finish(ctx, "bkws", len(matches), earlyStop)
	return matches, err
}

// SearchBidir is the sharded bidirectional expansion: the backward
// activation from the most selective keyword runs block-sharded like one
// bkws keyword, and each level's newly activated candidates are verified
// forward in parallel chunks. Byte-identical to bidir.SearchCtx.
func (c *Coordinator) SearchBidir(ctx context.Context, q []graph.Label, k, dmax int) ([]search.Match, error) {
	if len(q) == 0 {
		return nil, fmt.Errorf("bidir: empty query")
	}
	sel := 0
	for i, l := range q {
		if c.plan.g.LabelCount(l) == 0 {
			return nil, nil
		}
		if c.plan.g.LabelCount(l) < c.plan.g.LabelCount(q[sel]) {
			sel = i
		}
	}
	qid := queryID.Add(1)
	c.srv.BeginQuery(qid, 1)
	defer c.srv.EndQuery(qid)

	f := c.newFleet(qid, 1)
	f.seed(0, c.plan.seedsByBlock(q[sel]))

	var matches []search.Match
	verified := 0
	var err error
	earlyStop := false
	// carry holds vertices settled at the *next* level by local expansion
	// (this round's Next), verified once their level comes up.
	var carry []graph.V
	for lvl := int32(0); int(lvl) <= dmax; lvl++ {
		if ctx.Err() != nil {
			err = context.Cause(ctx)
			break
		}
		reqs := f.buildRequests(lvl, dmax)
		if len(reqs) == 0 && len(carry) == 0 {
			break
		}
		cands := carry
		carry = nil
		for _, resp := range f.runRound(ctx, reqs) {
			cands = append(cands, resp.Accepted...)
			carry = append(carry, resp.Next...)
			if len(resp.Next) > 0 {
				f.hasNext[resp.Block] = true
			}
			for _, v := range resp.Accepted {
				f.mirrorRow(0, resp.Block)[c.plan.pos[v]] = lvl
			}
			for _, v := range resp.Next {
				f.mirrorRow(0, resp.Block)[c.plan.pos[v]] = lvl + 1
			}
			f.route(resp)
		}
		if len(cands) > f.frontierPeak {
			f.frontierPeak = len(cands)
		}
		// Forward verification dominates bidir's cost and is independent
		// per candidate: chunk this level's activations across the pool.
		for _, resp := range f.verifyChunks(ctx, q, dmax, cands) {
			matches = append(matches, resp.Matches...)
			verified += resp.Verified
		}
		// Any future candidate has backward distance >= lvl+1 to the
		// selective keyword, hence score >= lvl+1 (strict bound: an equal
		// score could still win on Key order, so only a strictly better
		// k-th answer closes the search).
		if k > 0 && len(matches) >= k {
			search.SortMatches(matches)
			if matches[k-1].Score < float64(lvl+1) {
				earlyStop = true
				break
			}
		}
	}

	f.expanded += verified // bidir's ledger unit is verification attempts
	search.SortMatches(matches)
	matches = search.Truncate(matches, k)
	f.finish(ctx, "bidir", len(matches), earlyStop)
	return matches, err
}

// verifyChunks splits a level's candidates into one VerifyRequest per
// executor slot (at least verifyChunkMin roots each, so tiny levels do
// not shatter into per-root calls) and runs them concurrently.
const verifyChunkMin = 8

func (f *fleet) verifyChunks(ctx context.Context, q []graph.Label, dmax int, roots []graph.V) []*VerifyResponse {
	if len(roots) == 0 {
		return nil
	}
	chunk := (len(roots) + f.c.exec.Workers() - 1) / f.c.exec.Workers()
	if chunk < verifyChunkMin {
		chunk = verifyChunkMin
	}
	var reqs []*VerifyRequest
	for off := 0; off < len(roots); off += chunk {
		end := off + chunk
		if end > len(roots) {
			end = len(roots)
		}
		reqs = append(reqs, &VerifyRequest{Query: f.qid, Labels: q, DMax: dmax, Roots: roots[off:end]})
	}
	f.tasks += len(reqs)
	resps := make([]*VerifyResponse, len(reqs))
	f.c.exec.Map(len(reqs), func(i, worker int) {
		resps[i] = f.c.srv.Verify(ctx, reqs[i])
		f.workerWork[worker] += int64(resps[i].Verified)
	})
	return resps
}

package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"

	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/search"
)

// Coordinator drives the level-synchronous scatter-gather over one plan.
// It owns the global view the shards deliberately lack: which (keyword,
// block) slots still have work, the portal messages routed between
// blocks, the per-root Σdist bookkeeping, and the top-k early-stop bound.
// Everything it learns arrives through ExpandResponse/VerifyResponse —
// never by reading shard memory — so swapping Local for a network
// ShardServer changes no coordinator logic. Since the protocol is
// stateless, the coordinator is also the sole owner of settlement: shard
// responses are candidate reports, and the mirror decides what is new.
type Coordinator struct {
	plan *Plan
	exec *Executor
	srv  ShardServer
	met  *Metrics
}

// NewCoordinator wires a coordinator over plan, dispatching through exec
// to srv. met may be nil.
func NewCoordinator(plan *Plan, exec *Executor, srv ShardServer, met *Metrics) *Coordinator {
	return &Coordinator{plan: plan, exec: exec, srv: srv, met: met}
}

// fleet is the coordinator-side state of one query's expansion rounds,
// shared by the bkws and bidir drivers.
type fleet struct {
	c  *Coordinator
	nk int // expansion keywords (1 for bidir)
	nb int
	// mirror holds the settled-distance rows — the only copy anywhere:
	// shards are stateless, so the mirror is the authority that makes
	// duplicated or retried responses harmless (re-reported vertices are
	// already settled and ignored).
	mirror [][]int32
	counts [][]uint8   // per-block per-member settled-keyword counts (bkws)
	arrive [][]graph.V // settlement candidates for the next level, per (kw, block) slot

	// kwPos maps an expansion-keyword index to its query position (bkws:
	// identity; bidir: the selective keyword), for coverage attribution.
	kwPos []int
	nkQ   int // query keyword count (coverage PerKeyword length)

	// lost flips on the first terminal shard failure: the query finishes
	// settling what the current round already produced (still exact — see
	// the soundness note on runRound) and stops expanding.
	lost       bool
	lostByKw   []map[int]bool
	unverified int
	// failedPeers unions the peer addresses the transport blamed for the
	// losses above (see peersOf).
	failedPeers map[string]bool

	workerWork   []int64
	expanded     int
	portal       int
	tasks        int
	rounds       int
	frontierPeak int
}

func (c *Coordinator) newFleet(nk int, kwPos []int, nkQ int) *fleet {
	nb := c.plan.NumBlocks()
	return &fleet{
		c: c, nk: nk, nb: nb,
		mirror:     make([][]int32, nk*nb),
		arrive:     make([][]graph.V, nk*nb),
		kwPos:      kwPos,
		nkQ:        nkQ,
		lostByKw:   make([]map[int]bool, nk),
		workerWork: make([]int64, c.exec.Workers()),
	}
}

func (f *fleet) mirrorRow(kw, block int) []int32 {
	slot := kw*f.nb + block
	if f.mirror[slot] == nil {
		row := make([]int32, len(f.c.plan.blocks[block].members))
		for i := range row {
			row[i] = -1
		}
		f.mirror[slot] = row
	}
	return f.mirror[slot]
}

func (f *fleet) seed(kw int, byBlock map[int][]graph.V) {
	for b, seeds := range byBlock {
		f.arrive[kw*f.nb+b] = seeds
	}
}

// settleArrivals consumes every slot's pending candidates, settles the
// not-yet-seen ones at lvl in the mirror (calling settle for each), and
// returns the per-slot frontiers plus the total newly settled. Slots are
// visited in order and candidates in arrival order, so settlement order
// is deterministic (the final (score, Key) sort makes output order
// independent of it anyway).
func (f *fleet) settleArrivals(lvl int32, settle func(kw, block int, v graph.V)) (frontiers [][]graph.V, total int) {
	frontiers = make([][]graph.V, f.nk*f.nb)
	for slot := range f.arrive {
		cand := f.arrive[slot]
		if len(cand) == 0 {
			continue
		}
		f.arrive[slot] = nil
		kw, block := slot/f.nb, slot%f.nb
		row := f.mirrorRow(kw, block)
		var fr []graph.V
		for _, v := range cand {
			p := f.c.plan.pos[v]
			if row[p] != -1 {
				continue
			}
			row[p] = lvl
			settle(kw, block, v)
			fr = append(fr, v)
		}
		if len(fr) > 0 {
			frontiers[slot] = fr
			total += len(fr)
		}
	}
	return frontiers, total
}

// buildRequests turns the non-empty frontiers into one round's requests,
// in slot order (determinism of dispatch order is not needed for
// correctness — responses are merged set-wise — but it keeps traces
// readable).
func (f *fleet) buildRequests(lvl int32, frontiers [][]graph.V) []*ExpandRequest {
	var reqs []*ExpandRequest
	for slot, fr := range frontiers {
		if len(fr) == 0 {
			continue
		}
		reqs = append(reqs, &ExpandRequest{
			Kw:       slot / f.nb,
			Block:    slot % f.nb,
			Level:    lvl,
			Frontier: fr,
		})
	}
	return reqs
}

// runRound dispatches one round across the executor and returns the
// responses (nil entries mark failed slots). Per-worker expansion tallies
// land in workerWork[worker] — each worker writes only its own slot, so
// no lock.
//
// A slot error while the query's own context is still live is a terminal
// shard failure (the client has already exhausted retries, failover, and
// budget): the (keyword, block) slot is recorded as lost and the fleet
// stops expanding after this round. Soundness of what remains: every
// round before this one succeeded for every block, so all distances
// settled through this round's products (level Level+1) are exact — a
// shorter path through the failed block would have had to surface in an
// earlier, successful round. Settling this round's survivors is
// therefore safe; expanding past them is not, because a level+2
// settlement could silently inflate a distance whose true shortest path
// crossed the lost block. Stop, do not guess.
func (f *fleet) runRound(ctx context.Context, reqs []*ExpandRequest) []*ExpandResponse {
	f.rounds++
	f.tasks += len(reqs)
	// The round span groups this round's RPC spans in the stitched trace
	// and — because it rides the dispatch context — puts the round index
	// into /debug/active's current path while the query is blocked here.
	roundSpan := obs.SpanFromContext(ctx).StartChild("shard-round-" + strconv.Itoa(f.rounds-1))
	rctx := ctx
	if roundSpan != nil {
		roundSpan.SetAttr("round", f.rounds-1).SetAttr("tasks", len(reqs))
		rctx = obs.ContextWithSpan(ctx, roundSpan)
	}
	resps := make([]*ExpandResponse, len(reqs))
	errs := make([]error, len(reqs))
	f.c.exec.Map(len(reqs), func(i, worker int) {
		resp, err := f.c.srv.Expand(rctx, reqs[i])
		if err != nil {
			errs[i] = err
			return
		}
		resps[i] = resp
		f.workerWork[worker] += int64(resp.Expanded)
	})
	roundSpan.End()
	for i, err := range errs {
		if err == nil {
			continue
		}
		if ctx.Err() != nil {
			// The query's own deadline/cancel caused this; the loop head
			// degrades with the context cause, not with coverage loss.
			continue
		}
		f.lose(reqs[i].Kw, reqs[i].Block, err)
	}
	return resps
}

// lose marks a (keyword, block) slot terminally failed, attributing the
// loss to the peers the transport blamed.
func (f *fleet) lose(kw, block int, err error) {
	f.lost = true
	if f.lostByKw[kw] == nil {
		f.lostByKw[kw] = map[int]bool{}
	}
	f.lostByKw[kw][block] = true
	f.losePeers(err)
}

// losePeers unions the failed-peer addresses out of a transport error.
// The shard package cannot name shardrpc types (shardrpc imports shard),
// so attribution goes through the FailedPeers interface the transport's
// typed error implements; errors from other ShardServer implementations
// simply carry no attribution.
func (f *fleet) losePeers(err error) {
	var pf interface{ FailedPeers() []string }
	if !errors.As(err, &pf) {
		return
	}
	if f.failedPeers == nil {
		f.failedPeers = map[string]bool{}
	}
	for _, p := range pf.FailedPeers() {
		f.failedPeers[p] = true
	}
}

// absorb queues a response's settlement candidates: in-block neighbors
// for the same slot, portal crossings for the owning blocks. Candidates
// the coordinator already saw settle are dropped here (an optimization —
// settleArrivals re-checks the mirror, which is what makes duplicate
// responses harmless).
func (f *fleet) absorb(resp *ExpandResponse) {
	slot := resp.Kw*f.nb + resp.Block
	if row := f.mirror[slot]; row != nil {
		for _, v := range resp.Local {
			if row[f.c.plan.pos[v]] != -1 {
				continue
			}
			f.arrive[slot] = append(f.arrive[slot], v)
		}
	} else {
		f.arrive[slot] = append(f.arrive[slot], resp.Local...)
	}
	for _, msg := range resp.Outbox {
		tslot := resp.Kw*f.nb + int(msg.Block)
		if row := f.mirror[tslot]; row != nil && row[f.c.plan.pos[msg.V]] != -1 {
			continue
		}
		f.arrive[tslot] = append(f.arrive[tslot], msg.V)
		f.portal++
	}
}

// finish flushes the fleet's counters to the ambient ledger/span/metrics
// and its losses to the request's coverage collector.
func (f *fleet) finish(ctx context.Context, algo string, roots int, earlyStop bool) {
	led := obs.LedgerFromContext(ctx)
	led.AddExpanded(int64(f.expanded))
	led.NoteFrontier(int64(f.frontierPeak))
	for worker, n := range f.workerWork {
		led.AddShardWork(worker, n)
	}
	lostBlocks := map[int]bool{}
	if f.lost || f.unverified > 0 {
		cov := CoverageFromContext(ctx)
		for kw, lost := range f.lostByKw {
			for b := range lost {
				lostBlocks[b] = true
				cov.lose(f.kwPos[kw], b, f.nkQ, f.nb)
			}
		}
		cov.loseRoots(f.unverified)
		cov.losePeers(f.failedPeerList())
	}
	if sp := obs.SpanFromContext(ctx); sp != nil {
		sp.SetAttr("shard_workers", f.c.exec.Workers()).
			SetAttr("shard_blocks", f.nb).
			SetAttr("shard_rounds", f.rounds).
			SetAttr("shard_tasks", f.tasks).
			SetAttr("shard_portal_msgs", f.portal).
			SetAttr("roots", roots).
			SetAttr("early_topk", earlyStop)
		if f.lost || f.unverified > 0 {
			sp.SetAttr("shard_blocks_lost", len(lostBlocks)).
				SetAttr("shard_roots_unverified", f.unverified)
			if peers := f.failedPeerList(); len(peers) > 0 {
				sp.SetAttr("shard_failed_peers", peers)
			}
		}
	}
	if m := f.c.met; m != nil {
		m.Queries.With(algo, strconv.Itoa(f.c.exec.Workers())).Inc()
		m.Tasks.Add(int64(f.tasks))
		m.Portal.Add(int64(f.portal))
		m.Rounds.Observe(float64(f.rounds))
		m.Lost.Add(int64(len(lostBlocks)))
	}
}

// SearchBKWS is the sharded backward keyword search: every keyword's
// multi-source backward BFS decomposed per (keyword × block), stitched at
// portals, with the coordinator completing roots (vertices settled by all
// keywords) from its Σdist bookkeeping. Byte-identical to bkws.SearchCtx:
// the rounds compute the same exact distances, and the strict stop bound
// admits exactly the exhaustive top-k prefix.
func (c *Coordinator) SearchBKWS(ctx context.Context, q []graph.Label, k, dmax int) ([]search.Match, error) {
	if len(q) == 0 {
		return nil, fmt.Errorf("bkws: empty query")
	}
	seeds := make([]map[int][]graph.V, len(q))
	for i, l := range q {
		seeds[i] = c.plan.seedsByBlock(l)
		if seeds[i] == nil {
			return nil, nil // a keyword with no occurrences has no answers
		}
	}
	nk := len(q)
	kwPos := make([]int, nk)
	for i := range kwPos {
		kwPos[i] = i
	}
	f := c.newFleet(nk, kwPos, nk)
	for i := range q {
		f.seed(i, seeds[i])
	}

	var matches []search.Match
	// settle completes the root once every keyword has settled it (the
	// mirror write happened in settleArrivals). counts is bounded by
	// len(q) per member, so uint8 is ample (queries are a handful of
	// keywords).
	f.counts = make([][]uint8, f.nb)
	settle := func(kw, block int, v graph.V) {
		p := c.plan.pos[v]
		if f.counts[block] == nil {
			f.counts[block] = make([]uint8, len(c.plan.blocks[block].members))
		}
		f.counts[block][p]++
		if int(f.counts[block][p]) != nk {
			return
		}
		dists := make([]int, nk)
		sum := 0
		for kw2 := 0; kw2 < nk; kw2++ {
			d := int(f.mirror[kw2*f.nb+block][p])
			dists[kw2] = d
			sum += d
		}
		matches = append(matches, search.Match{Root: v, Dists: dists, Score: float64(sum)})
	}

	var err error
	earlyStop := false
	for lvl := int32(0); int(lvl) <= dmax; lvl++ {
		if ctx.Err() != nil {
			err = context.Cause(ctx)
			break
		}
		frontiers, total := f.settleArrivals(lvl, settle)
		if total == 0 {
			break
		}
		if total > f.frontierPeak {
			f.frontierPeak = total
		}
		// Every settlement still pending has level >= lvl+1, so an
		// undiscovered root completes with score >= lvl+1: once the k-th
		// answer is strictly better, nothing out there can displace the
		// prefix — and the next round need not even be dispatched.
		if k > 0 && len(matches) >= k {
			search.SortMatches(matches)
			if matches[k-1].Score < float64(lvl+1) {
				earlyStop = true
				break
			}
		}
		// Vertices at the distance bound are settled — valid witnesses —
		// but not expanded; and after a terminal shard failure the fleet
		// settles this round's products, then stops (see runRound).
		if int(lvl) == dmax || f.lost {
			break
		}
		for _, resp := range f.runRound(ctx, f.buildRequests(lvl, frontiers)) {
			if resp == nil {
				continue
			}
			f.expanded += resp.Expanded
			f.absorb(resp)
		}
	}

	search.SortMatches(matches)
	matches = search.Truncate(matches, k)
	// Witness nodes are presentational (Match.Key ignores them); assemble
	// them only for the returned matches, in parallel — same deterministic
	// smallest-ID BFS as the sequential path, just not wasted on answers
	// that truncation drops.
	c.exec.Map(len(matches), func(i, _ int) {
		m := &matches[i]
		m.Nodes = search.WitnessNodes(c.plan.g, m.Root, q, m.Dists)
	})
	f.finish(ctx, "bkws", len(matches), earlyStop)
	return matches, err
}

// SearchBidir is the sharded bidirectional expansion: the backward
// activation from the most selective keyword runs block-sharded like one
// bkws keyword, and each level's newly activated candidates are verified
// forward in parallel chunks. Byte-identical to bidir.SearchCtx.
func (c *Coordinator) SearchBidir(ctx context.Context, q []graph.Label, k, dmax int) ([]search.Match, error) {
	if len(q) == 0 {
		return nil, fmt.Errorf("bidir: empty query")
	}
	sel := 0
	for i, l := range q {
		if c.plan.g.LabelCount(l) == 0 {
			return nil, nil
		}
		if c.plan.g.LabelCount(l) < c.plan.g.LabelCount(q[sel]) {
			sel = i
		}
	}
	f := c.newFleet(1, []int{sel}, len(q))
	f.seed(0, c.plan.seedsByBlock(q[sel]))

	var matches []search.Match
	verified := 0
	var err error
	earlyStop := false
	for lvl := int32(0); int(lvl) <= dmax; lvl++ {
		if ctx.Err() != nil {
			err = context.Cause(ctx)
			break
		}
		var cands []graph.V
		frontiers, total := f.settleArrivals(lvl, func(_, _ int, v graph.V) {
			cands = append(cands, v)
		})
		if total == 0 {
			break
		}
		if total > f.frontierPeak {
			f.frontierPeak = total
		}
		// Forward verification dominates bidir's cost and is independent
		// per candidate: chunk this level's activations across the pool.
		for _, resp := range f.verifyChunks(ctx, q, dmax, cands) {
			if resp == nil {
				continue
			}
			matches = append(matches, resp.Matches...)
			verified += resp.Verified
		}
		// Any future candidate has backward distance >= lvl+1 to the
		// selective keyword, hence score >= lvl+1 (strict bound: an equal
		// score could still win on Key order, so only a strictly better
		// k-th answer closes the search).
		if k > 0 && len(matches) >= k {
			search.SortMatches(matches)
			if matches[k-1].Score < float64(lvl+1) {
				earlyStop = true
				break
			}
		}
		if int(lvl) == dmax || f.lost {
			break
		}
		for _, resp := range f.runRound(ctx, f.buildRequests(lvl, frontiers)) {
			if resp == nil {
				continue
			}
			f.absorb(resp)
		}
	}

	f.expanded += verified // bidir's ledger unit is verification attempts
	search.SortMatches(matches)
	matches = search.Truncate(matches, k)
	f.finish(ctx, "bidir", len(matches), earlyStop)
	return matches, err
}

// verifyChunks splits a level's candidates into one VerifyRequest per
// executor slot (at least verifyChunkMin roots each, so tiny levels do
// not shatter into per-root calls) and runs them concurrently. A chunk
// that terminally fails drops only its own roots — verification is exact
// and independent per root, so the rest of the level stays sound; the
// dropped count lands in the coverage report.
const verifyChunkMin = 8

func (f *fleet) verifyChunks(ctx context.Context, q []graph.Label, dmax int, roots []graph.V) []*VerifyResponse {
	if len(roots) == 0 {
		return nil
	}
	chunk := (len(roots) + f.c.exec.Workers() - 1) / f.c.exec.Workers()
	if chunk < verifyChunkMin {
		chunk = verifyChunkMin
	}
	var reqs []*VerifyRequest
	for off := 0; off < len(roots); off += chunk {
		end := off + chunk
		if end > len(roots) {
			end = len(roots)
		}
		reqs = append(reqs, &VerifyRequest{Labels: q, DMax: dmax, Roots: roots[off:end]})
	}
	f.tasks += len(reqs)
	resps := make([]*VerifyResponse, len(reqs))
	errs := make([]error, len(reqs))
	f.c.exec.Map(len(reqs), func(i, worker int) {
		resp, err := f.c.srv.Verify(ctx, reqs[i])
		if err != nil {
			errs[i] = err
			return
		}
		resps[i] = resp
		f.workerWork[worker] += int64(resp.Verified)
	})
	for i, err := range errs {
		if err == nil || ctx.Err() != nil {
			continue
		}
		f.unverified += len(reqs[i].Roots)
		f.losePeers(err)
	}
	return resps
}

// failedPeerList returns the sorted failed-peer union (nil when empty).
func (f *fleet) failedPeerList() []string {
	if len(f.failedPeers) == 0 {
		return nil
	}
	out := make([]string, 0, len(f.failedPeers))
	for p := range f.failedPeers {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

package shard

import (
	"context"
	"sort"
	"sync"
)

// Coverage accumulates what a query's sharded execution failed to reach:
// (keyword × block) slots abandoned because every replica of a block
// failed past budget, and candidate roots whose verification chunk could
// not be served. The HTTP server installs one per request (like
// obs.Ledger); the coordinator records losses into it; the response
// renders it as the "coverage" block next to "degraded":true.
//
// A lossy query's results are still sound — every returned match is a
// true answer of the full graph with its exact score, because all
// distances settled before the loss are exact and the coordinator stops
// settling at the first level a loss could distort (see DESIGN.md §9.5).
// What is lost is completeness: answers in or beyond the unreached region
// are missing, which is why lossy results are never cached.
type Coverage struct {
	mu         sync.Mutex
	total      int            // blocks in the plan (0 until a loss is recorded)
	lostByKw   []map[int]bool // query-keyword position -> lost block set
	unverified int            // candidate roots dropped with their verify chunk
	// failedPeers is the union of peer addresses implicated in the losses
	// above (every replica tried before a slot was abandoned) — "which
	// block" names the damage, "which peer" names the culprit.
	failedPeers map[string]bool
}

// NewCoverage returns an empty collector.
func NewCoverage() *Coverage { return &Coverage{} }

type coverageKey struct{}

// ContextWithCoverage returns a context carrying c.
func ContextWithCoverage(ctx context.Context, c *Coverage) context.Context {
	return context.WithValue(ctx, coverageKey{}, c)
}

// CoverageFromContext returns the context's collector, or nil — all
// Coverage methods are nil-safe, so callers never need to check.
func CoverageFromContext(ctx context.Context) *Coverage {
	c, _ := ctx.Value(coverageKey{}).(*Coverage)
	return c
}

// lose records that keyword kw (query position) abandoned block, out of
// total blocks for nk query keywords.
func (c *Coverage) lose(kw, block, nk, total int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total = total
	if len(c.lostByKw) < nk {
		grown := make([]map[int]bool, nk)
		copy(grown, c.lostByKw)
		c.lostByKw = grown
	}
	if c.lostByKw[kw] == nil {
		c.lostByKw[kw] = map[int]bool{}
	}
	c.lostByKw[kw][block] = true
}

// losePeers records the peer addresses a loss was attributed to.
func (c *Coverage) losePeers(peers []string) {
	if c == nil || len(peers) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failedPeers == nil {
		c.failedPeers = map[string]bool{}
	}
	for _, p := range peers {
		c.failedPeers[p] = true
	}
}

// loseRoots records n candidate roots dropped because their verification
// chunk could not be served.
func (c *Coverage) loseRoots(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.mu.Lock()
	c.unverified += n
	c.mu.Unlock()
}

// Lossy reports whether anything was lost.
func (c *Coverage) Lossy() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.unverified > 0 || len(c.lostByKw) > 0
}

// CoverageReport is the JSON-facing snapshot of a lossy query.
type CoverageReport struct {
	// BlocksTotal/BlocksLost count plan blocks; a block is lost if any
	// keyword's expansion abandoned it.
	BlocksTotal int   `json:"blocks_total"`
	BlocksLost  int   `json:"blocks_lost"`
	LostBlocks  []int `json:"lost_blocks,omitempty"`
	// Fraction is blocks reached / total (1.0 when only verification was
	// lost).
	Fraction float64 `json:"fraction"`
	// PerKeyword is the reached fraction per query keyword position (the
	// server maps positions to resolved keyword names in the response).
	PerKeyword []float64 `json:"per_keyword,omitempty"`
	// RootsUnverified counts bidir candidate roots dropped unverified.
	RootsUnverified int `json:"roots_unverified,omitempty"`
	// FailedPeers lists the shard peer addresses implicated in the loss
	// (sorted), when the transport reported them.
	FailedPeers []string `json:"failed_peers,omitempty"`
}

// Report snapshots the collector; nil when nothing was lost.
func (c *Coverage) Report() *CoverageReport {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.unverified == 0 && len(c.lostByKw) == 0 {
		return nil
	}
	r := &CoverageReport{
		BlocksTotal:     c.total,
		Fraction:        1,
		RootsUnverified: c.unverified,
	}
	if len(c.lostByKw) > 0 && c.total > 0 {
		union := map[int]bool{}
		r.PerKeyword = make([]float64, len(c.lostByKw))
		for kw, lost := range c.lostByKw {
			for b := range lost {
				union[b] = true
			}
			r.PerKeyword[kw] = float64(c.total-len(lost)) / float64(c.total)
		}
		r.BlocksLost = len(union)
		r.Fraction = float64(c.total-len(union)) / float64(c.total)
		r.LostBlocks = make([]int, 0, len(union))
		for b := range union {
			r.LostBlocks = append(r.LostBlocks, b)
		}
		sort.Ints(r.LostBlocks)
	}
	if len(c.failedPeers) > 0 {
		r.FailedPeers = make([]string, 0, len(c.failedPeers))
		for p := range c.failedPeers {
			r.FailedPeers = append(r.FailedPeers, p)
		}
		sort.Strings(r.FailedPeers)
	}
	return r
}

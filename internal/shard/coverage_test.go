package shard_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"bigindex/internal/graph"
	"bigindex/internal/search"
	"bigindex/internal/search/bidir"
	"bigindex/internal/search/bkws"
	"bigindex/internal/shard"
)

// faulty wraps a ShardServer and terminally fails chosen calls — the
// in-process stand-in for "every replica of that block is unreachable
// past budget" (the shardrpc client surfaces exactly this shape).
type faulty struct {
	inner        shard.ShardServer
	failBlock    int  // Expand requests for this block fail (-1: never)
	failVerify   bool // all Verify requests fail
	dupResponses bool // serve Expand twice and concatenate the responses
}

func (f *faulty) Expand(ctx context.Context, req *shard.ExpandRequest) (*shard.ExpandResponse, error) {
	if req.Block == f.failBlock {
		return nil, errors.New("injected: block unreachable")
	}
	resp, err := f.inner.Expand(ctx, req)
	if err != nil || !f.dupResponses {
		return resp, err
	}
	again, err := f.inner.Expand(ctx, req)
	if err != nil {
		return nil, err
	}
	resp.Local = append(resp.Local, again.Local...)
	resp.Outbox = append(resp.Outbox, again.Outbox...)
	return resp, nil
}

func (f *faulty) Verify(ctx context.Context, req *shard.VerifyRequest) (*shard.VerifyResponse, error) {
	if f.failVerify {
		return nil, errors.New("injected: verify unreachable")
	}
	return f.inner.Verify(ctx, req)
}

// exhaustive returns the sequential algorithm's full answer set keyed by
// root, for soundness checks against degraded partials.
func exhaustive(t *testing.T, algo search.Algorithm, g *graph.Graph, q []graph.Label) map[graph.V]search.Match {
	t.Helper()
	prep, err := algo.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	all, err := prep.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	byRoot := make(map[graph.V]search.Match, len(all))
	for _, m := range all {
		byRoot[m.Root] = m
	}
	return byRoot
}

// TestDuplicatedResponsesHarmless pins the statelessness claim the
// network retries lean on: a shard that effectively serves every round
// twice (duplicated Local/Outbox reports) changes nothing — the
// coordinator's mirror is the only settlement authority.
func TestDuplicatedResponsesHarmless(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dmax = 4
	for trial := 0; trial < 5; trial++ {
		n := 50 + rng.Intn(200)
		g := randomGraph(rng, n, 2*n, 5)
		q := randomQuery(rng, g, 3)
		for _, mode := range []shard.Mode{shard.ModeBKWS, shard.ModeBidir} {
			var seq search.Algorithm
			if mode == shard.ModeBidir {
				seq = bidir.New(dmax)
			} else {
				seq = bkws.New(dmax)
			}
			seqPrep, err := seq.Prepare(g)
			if err != nil {
				t.Fatal(err)
			}
			want, err := seqPrep.Search(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			algo := shard.New(mode, dmax, shard.Options{
				Workers:   4,
				BlockSize: 16,
				Server: func(p *shard.Plan) shard.ShardServer {
					return &faulty{inner: shard.NewLocal(p), failBlock: -1, dupResponses: true}
				},
			})
			prep, err := algo.Prepare(g)
			if err != nil {
				t.Fatal(err)
			}
			got, err := prep.Search(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, fmt.Sprintf("dup/%v", mode), want, got)
		}
	}
}

// TestBlockLossDegradesSoundly kills one block's expansions outright and
// checks the contract: no error, every returned match is a true answer
// of the full graph with its exact score, and the coverage collector
// reports the loss accurately.
func TestBlockLossDegradesSoundly(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const dmax = 4
	for trial := 0; trial < 8; trial++ {
		n := 80 + rng.Intn(200)
		g := randomGraph(rng, n, 3*n, 5)
		q := randomQuery(rng, g, 2)
		truth := exhaustive(t, bkws.New(dmax), g, q)

		var nb int
		algo := shard.New(shard.ModeBKWS, dmax, shard.Options{
			Workers:   4,
			BlockSize: 16,
			Server: func(p *shard.Plan) shard.ShardServer {
				nb = p.NumBlocks()
				return &faulty{inner: shard.NewLocal(p), failBlock: 1}
			},
		})
		prep, err := algo.Prepare(g)
		if err != nil {
			t.Fatal(err)
		}
		cov := shard.NewCoverage()
		ctx := shard.ContextWithCoverage(context.Background(), cov)
		got, err := prep.(interface {
			SearchCtx(context.Context, []graph.Label, int) ([]search.Match, error)
		}).SearchCtx(ctx, q, 0)
		if err != nil {
			t.Fatalf("block loss must degrade, not error: %v", err)
		}
		for _, m := range got {
			want, ok := truth[m.Root]
			if !ok {
				t.Fatalf("wrong answer: root %d not in the exhaustive set", m.Root)
			}
			if !reflect.DeepEqual(want.Dists, m.Dists) || want.Score != m.Score {
				t.Fatalf("wrong answer: root %d got dists %v score %v, want %v %v",
					m.Root, m.Dists, m.Score, want.Dists, want.Score)
			}
		}
		if nb < 2 {
			continue // single-block plan: block 1 never dispatched
		}
		rep := cov.Report()
		if !cov.Lossy() || rep == nil {
			// The lost block may legitimately never be dispatched (no
			// keyword reaches it within dmax); only a dispatched loss
			// must be reported. Detect by rerunning fault-free: if the
			// healthy run also never used block 1, silence is correct.
			healthy := shard.New(shard.ModeBKWS, dmax, shard.Options{Workers: 4, BlockSize: 16})
			hp, _ := healthy.Prepare(g)
			hm, _ := hp.Search(q, 0)
			if len(hm) == len(got) {
				continue
			}
			t.Fatalf("lost answers (%d healthy vs %d degraded) but no coverage report", len(hm), len(got))
		}
		if rep.BlocksTotal != nb || rep.BlocksLost < 1 || rep.Fraction >= 1 {
			t.Fatalf("coverage report wrong: %+v (nb=%d)", rep, nb)
		}
		for _, b := range rep.LostBlocks {
			if b != 1 {
				t.Fatalf("reported lost block %d, only block 1 was killed", b)
			}
		}
		if len(rep.PerKeyword) != len(q) {
			t.Fatalf("per-keyword coverage has %d entries, want %d", len(rep.PerKeyword), len(q))
		}
	}
}

// TestVerifyLossDegradesSoundly fails bidir's verification terminally:
// the query must come back empty-or-sound with RootsUnverified counted,
// never an error.
func TestVerifyLossDegradesSoundly(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const dmax = 4
	g := randomGraph(rng, 200, 600, 5)
	q := randomQuery(rng, g, 2)
	truth := exhaustive(t, bidir.New(dmax), g, q)

	algo := shard.New(shard.ModeBidir, dmax, shard.Options{
		Workers:   4,
		BlockSize: 16,
		Server: func(p *shard.Plan) shard.ShardServer {
			return &faulty{inner: shard.NewLocal(p), failBlock: -1, failVerify: true}
		},
	})
	prep, err := algo.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	cov := shard.NewCoverage()
	ctx := shard.ContextWithCoverage(context.Background(), cov)
	got, err := prep.(interface {
		SearchCtx(context.Context, []graph.Label, int) ([]search.Match, error)
	}).SearchCtx(ctx, q, 0)
	if err != nil {
		t.Fatalf("verify loss must degrade, not error: %v", err)
	}
	for _, m := range got {
		if _, ok := truth[m.Root]; !ok {
			t.Fatalf("wrong answer: root %d not in the exhaustive set", m.Root)
		}
	}
	if len(truth) == 0 {
		return // nothing to verify, nothing to lose
	}
	rep := cov.Report()
	if rep == nil || rep.RootsUnverified == 0 {
		t.Fatalf("all verification failed yet coverage reports %+v", rep)
	}
	if rep.Fraction != 1 || rep.BlocksLost != 0 {
		t.Fatalf("verify-only loss must keep block coverage full: %+v", rep)
	}
}

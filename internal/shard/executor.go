package shard

import (
	"context"
	"sync"
	"sync/atomic"

	"bigindex/internal/graph"
	"bigindex/internal/search"
)

// Executor is the bounded worker pool. Workers are spawned per Map call
// and die with it: queries run for milliseconds while pools would need a
// lifecycle (nothing closes a search.Prepared), and a goroutine spawn is
// noise next to one expansion round. Worker 0 is the calling goroutine.
type Executor struct {
	workers int
}

// NewExecutor returns an executor running at most workers tasks at once
// (minimum 1).
func NewExecutor(workers int) *Executor {
	if workers < 1 {
		workers = 1
	}
	return &Executor{workers: workers}
}

// Workers returns the configured pool size.
func (e *Executor) Workers() int { return e.workers }

// Map runs fn(i, worker) for every i in [0, n) across the pool and waits
// for all of them. Tasks are claimed from a shared counter (work
// stealing), so a straggler block does not idle the other workers; worker
// ids are dense in [0, Workers), letting callers keep per-worker tallies
// without locks.
func (e *Executor) Map(n int, fn func(i, worker int)) {
	if n <= 0 {
		return
	}
	w := e.workers
	if n < w {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	run := func(worker int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i, worker)
		}
	}
	wg.Add(w - 1)
	for worker := 1; worker < w; worker++ {
		go func(worker int) {
			defer wg.Done()
			run(worker)
		}(worker)
	}
	run(0)
	wg.Wait()
}

// Local is the in-process ShardServer: all blocks of one plan served from
// shared memory. It is stateless — every request carries its whole input
// and the plan is immutable — so one Local value serves any number of
// concurrent queries, rounds, and retries with no locking at all.
type Local struct {
	plan *Plan
}

// NewLocal serves every block of plan in-process.
func NewLocal(plan *Plan) *Local {
	return &Local{plan: plan}
}

// Expand implements ShardServer: scan the frontier's block-local
// in-adjacency, reporting in-block neighbors (deduplicated within this
// response — the coordinator's mirror handles cross-round duplicates) and
// portal crossings. On cancellation the loop drains early: everything
// already scanned is still reported, the rest of the frontier is simply
// abandoned — sound, incomplete, like every degraded path.
func (l *Local) Expand(ctx context.Context, req *ExpandRequest) (*ExpandResponse, error) {
	bi := &l.plan.blocks[req.Block]
	resp := &ExpandResponse{Kw: req.Kw, Block: req.Block}

	cancel := search.NewCanceller(ctx)
	seen := make([]bool, len(bi.members))
	var remoteSeen map[graph.V]bool
	for _, v := range req.Frontier {
		if cancel.Cancelled() {
			break
		}
		resp.Expanded++
		p := l.plan.pos[v]
		for _, u := range bi.localAdj[bi.localOff[p]:bi.localOff[p+1]] {
			up := l.plan.pos[u]
			if !seen[up] {
				seen[up] = true
				resp.Local = append(resp.Local, u)
			}
		}
		remote := bi.remoteAdj[bi.remoteOff[p]:bi.remoteOff[p+1]]
		if len(remote) > 0 && remoteSeen == nil {
			remoteSeen = make(map[graph.V]bool, len(remote)*2)
		}
		for _, msg := range remote {
			if !remoteSeen[msg.V] {
				remoteSeen[msg.V] = true
				resp.Outbox = append(resp.Outbox, msg)
			}
		}
	}
	return resp, nil
}

// Verify implements ShardServer: bidir's forward verification for a chunk
// of candidate roots, each an independent bounded BFS over the immutable
// graph. Matches keep MinDistToLabels' deterministic smallest-ID witness
// tie-break, so they are byte-identical to the sequential path's.
func (l *Local) Verify(ctx context.Context, req *VerifyRequest) (*VerifyResponse, error) {
	resp := &VerifyResponse{}
	cancel := search.NewCanceller(ctx)
	for _, r := range req.Roots {
		if cancel.Cancelled() {
			break
		}
		resp.Verified++
		dists, nodes, ok := search.MinDistToLabels(l.plan.g, r, req.Labels, req.DMax)
		if !ok {
			continue
		}
		sum := 0
		for _, d := range dists {
			sum += d
		}
		resp.Matches = append(resp.Matches, search.Match{
			Root:  r,
			Nodes: nodes,
			Dists: dists,
			Score: float64(sum),
		})
	}
	return resp, nil
}

package shard

import (
	"context"
	"sync"
	"sync/atomic"

	"bigindex/internal/graph"
	"bigindex/internal/search"
)

// Executor is the bounded worker pool. Workers are spawned per Map call
// and die with it: queries run for milliseconds while pools would need a
// lifecycle (nothing closes a search.Prepared), and a goroutine spawn is
// noise next to one expansion round. Worker 0 is the calling goroutine.
type Executor struct {
	workers int
}

// NewExecutor returns an executor running at most workers tasks at once
// (minimum 1).
func NewExecutor(workers int) *Executor {
	if workers < 1 {
		workers = 1
	}
	return &Executor{workers: workers}
}

// Workers returns the configured pool size.
func (e *Executor) Workers() int { return e.workers }

// Map runs fn(i, worker) for every i in [0, n) across the pool and waits
// for all of them. Tasks are claimed from a shared counter (work
// stealing), so a straggler block does not idle the other workers; worker
// ids are dense in [0, Workers), letting callers keep per-worker tallies
// without locks.
func (e *Executor) Map(n int, fn func(i, worker int)) {
	if n <= 0 {
		return
	}
	w := e.workers
	if n < w {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	run := func(worker int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i, worker)
		}
	}
	wg.Add(w - 1)
	for worker := 1; worker < w; worker++ {
		go func(worker int) {
			defer wg.Done()
			run(worker)
		}(worker)
	}
	run(0)
	wg.Wait()
}

// Local is the in-process ShardServer: all blocks of one plan served from
// shared memory. Per-query state is keyed by the coordinator-chosen query
// id; within a query, the coordinator never has two requests for the same
// (keyword, block) in flight, so the state rows need no locking — only
// the query table itself is guarded.
type Local struct {
	plan    *Plan
	mu      sync.Mutex
	queries map[uint64]*queryState
}

// NewLocal serves every block of plan in-process.
func NewLocal(plan *Plan) *Local {
	return &Local{plan: plan, queries: map[uint64]*queryState{}}
}

// queryState is one query's shard-side state: per-(keyword, block)
// settled-distance arrays (dist) and the locally settled frontier held
// over to the next round (next). Outer slices are sized at BeginQuery;
// inner rows are allocated lazily by the single request that owns the
// (keyword, block) slot, so concurrent rounds touch disjoint elements.
type queryState struct {
	nb   int
	dist [][]int32
	next [][]graph.V
}

func (st *queryState) row(kw, block, members int) []int32 {
	i := kw*st.nb + block
	if st.dist[i] == nil {
		d := make([]int32, members)
		for j := range d {
			d[j] = -1
		}
		st.dist[i] = d
	}
	return st.dist[i]
}

// BeginQuery implements ShardServer.
func (l *Local) BeginQuery(id uint64, numKeywords int) {
	nb := l.plan.NumBlocks()
	st := &queryState{
		nb:   nb,
		dist: make([][]int32, numKeywords*nb),
		next: make([][]graph.V, numKeywords*nb),
	}
	l.mu.Lock()
	l.queries[id] = st
	l.mu.Unlock()
}

// EndQuery implements ShardServer.
func (l *Local) EndQuery(id uint64) {
	l.mu.Lock()
	delete(l.queries, id)
	l.mu.Unlock()
}

func (l *Local) state(id uint64) *queryState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.queries[id]
}

// Expand implements ShardServer: settle injected candidates, expand the
// round's frontier one hop along block-local in-edges, and report portal
// crossings. On cancellation the loop drains early: everything already
// settled is still reported (the coordinator's bookkeeping must mirror
// shard state exactly), the rest of the frontier is simply abandoned —
// sound, incomplete, like every degraded path.
func (l *Local) Expand(ctx context.Context, req *ExpandRequest) *ExpandResponse {
	st := l.state(req.Query)
	bi := &l.plan.blocks[req.Block]
	dist := st.row(req.Kw, req.Block, len(bi.members))
	resp := &ExpandResponse{Kw: req.Kw, Block: req.Block}

	slot := req.Kw*st.nb + req.Block
	frontier := st.next[slot]
	st.next[slot] = nil
	for _, v := range req.Inject {
		p := l.plan.pos[v]
		if dist[p] == -1 {
			dist[p] = req.Level
			resp.Accepted = append(resp.Accepted, v)
			frontier = append(frontier, v)
		}
	}
	if !req.Expand {
		return resp
	}

	cancel := search.NewCanceller(ctx)
	var next []graph.V
	var remoteSeen map[graph.V]bool
	for _, v := range frontier {
		if cancel.Cancelled() {
			break
		}
		resp.Expanded++
		p := l.plan.pos[v]
		for _, u := range bi.localAdj[bi.localOff[p]:bi.localOff[p+1]] {
			up := l.plan.pos[u]
			if dist[up] == -1 {
				dist[up] = req.Level + 1
				next = append(next, u)
			}
		}
		remote := bi.remoteAdj[bi.remoteOff[p]:bi.remoteOff[p+1]]
		if len(remote) > 0 && remoteSeen == nil {
			remoteSeen = make(map[graph.V]bool, len(remote)*2)
		}
		for _, msg := range remote {
			if !remoteSeen[msg.V] {
				remoteSeen[msg.V] = true
				resp.Outbox = append(resp.Outbox, msg)
			}
		}
	}
	st.next[slot] = next
	resp.Next = next
	return resp
}

// Verify implements ShardServer: bidir's forward verification for a chunk
// of candidate roots, each an independent bounded BFS over the immutable
// graph. Matches keep MinDistToLabels' deterministic smallest-ID witness
// tie-break, so they are byte-identical to the sequential path's.
func (l *Local) Verify(ctx context.Context, req *VerifyRequest) *VerifyResponse {
	resp := &VerifyResponse{}
	cancel := search.NewCanceller(ctx)
	for _, r := range req.Roots {
		if cancel.Cancelled() {
			break
		}
		resp.Verified++
		dists, nodes, ok := search.MinDistToLabels(l.plan.g, r, req.Labels, req.DMax)
		if !ok {
			continue
		}
		sum := 0
		for _, d := range dists {
			sum += d
		}
		resp.Matches = append(resp.Matches, search.Match{
			Root:  r,
			Nodes: nodes,
			Dists: dists,
			Score: float64(sum),
		})
	}
	return resp
}

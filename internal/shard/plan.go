package shard

import (
	"sync"

	"bigindex/internal/graph"
	"bigindex/internal/partition"
)

// Planner turns a partitioning into per-block sub-indexes. It carries no
// per-query state and is safe for concurrent use.
type Planner struct {
	opt Options
}

// NewPlanner returns a planner with the given partition options (Workers
// and Metrics are ignored here; only BlockSize and Seed shape the plan).
func NewPlanner(opt Options) *Planner { return &Planner{opt: opt} }

// Plan is the immutable per-graph sharding layout: the partitioning, a
// vertex → in-block position index, and one blockIndex per block. A plan
// is built once per index version and shared by every query and every
// worker count against that version.
type Plan struct {
	g      *graph.Graph
	part   *partition.Partitioning
	pos    []int32 // pos[v] = index of v within Blocks[BlockOf[v]]
	blocks []blockIndex
}

// blockIndex is one block's sub-index: the member list and the members'
// in-adjacency split into block-local edges (plain CSR over global vertex
// ids) and portal edges (in-neighbors living in other blocks, annotated
// with the owning block). The split is what makes a round lock-free: a
// worker expanding (kw, block) touches only this block's rows and emits
// the remote side as outbox messages.
type blockIndex struct {
	members   []graph.V
	localOff  []uint32
	localAdj  []graph.V
	remoteOff []uint32
	remoteAdj []PortalMsg
}

// Plan materializes the per-block sub-indexes for an existing partitioning.
func (pl *Planner) Plan(p *partition.Partitioning) *Plan {
	g := p.Graph()
	n := g.NumVertices()
	pos := make([]int32, n)
	for _, members := range p.Blocks {
		for i, v := range members {
			pos[v] = int32(i)
		}
	}
	blocks := make([]blockIndex, len(p.Blocks))
	for b := range p.Blocks {
		members := p.Blocks[b]
		bi := blockIndex{
			members:   members,
			localOff:  make([]uint32, len(members)+1),
			remoteOff: make([]uint32, len(members)+1),
		}
		for i, v := range members {
			for _, u := range g.In(v) {
				if p.BlockOf[u] == b {
					bi.localAdj = append(bi.localAdj, u)
				} else {
					bi.remoteAdj = append(bi.remoteAdj, PortalMsg{V: u, Block: int32(p.BlockOf[u])})
				}
			}
			bi.localOff[i+1] = uint32(len(bi.localAdj))
			bi.remoteOff[i+1] = uint32(len(bi.remoteAdj))
		}
		blocks[b] = bi
	}
	return &Plan{g: g, part: p, pos: pos, blocks: blocks}
}

// PlanGraph partitions g with the planner's BlockSize/Seed and plans it.
func (pl *Planner) PlanGraph(g *graph.Graph) *Plan {
	return pl.Plan(partition.BFSGrowSeed(g, pl.opt.blockSize(), pl.opt.Seed))
}

// Graph returns the planned graph.
func (p *Plan) Graph() *graph.Graph { return p.g }

// Partitioning returns the underlying partitioning.
func (p *Plan) Partitioning() *partition.Partitioning { return p.part }

// NumBlocks reports the number of blocks.
func (p *Plan) NumBlocks() int { return len(p.blocks) }

// EdgeCut reports the number of edges crossing block boundaries.
func (p *Plan) EdgeCut() int { return p.part.EdgeCut() }

// AdjacencyOf reconstructs every vertex's in-adjacency as the sub-indexes
// see it: block-local neighbors and portal messages, in CSR row order.
// Invariant checks and debugging use it; query execution reads the CSR
// rows directly.
func (p *Plan) AdjacencyOf() (local [][]graph.V, remote [][]PortalMsg) {
	n := p.g.NumVertices()
	local = make([][]graph.V, n)
	remote = make([][]PortalMsg, n)
	for b := range p.blocks {
		bi := &p.blocks[b]
		for i, v := range bi.members {
			local[v] = bi.localAdj[bi.localOff[i]:bi.localOff[i+1]]
			remote[v] = bi.remoteAdj[bi.remoteOff[i]:bi.remoteOff[i+1]]
		}
	}
	return local, remote
}

// seedsByBlock buckets a label's posting list by owning block. Posting
// lists are ascending and block member lists are ascending, so the bucket
// contents are ascending too — deterministic seed injection order.
func (p *Plan) seedsByBlock(l graph.Label) map[int][]graph.V {
	seeds := p.g.VerticesWithLabel(l)
	if len(seeds) == 0 {
		return nil
	}
	by := make(map[int][]graph.V)
	for _, s := range seeds {
		b := p.part.BlockOf[s]
		by[b] = append(by[b], s)
	}
	return by
}

// PlanCache builds and caches one Plan per graph identity. Graphs are
// immutable (mutations and reloads swap in a new *graph.Graph), so the
// pointer is a sound cache key and a cached plan can never go stale —
// this is also what gives sharded queries epoch consistency: a query
// resolves its plan through the index-state bundle it loaded at entry,
// and a concurrent index swap builds against the new graph under a new
// key without disturbing in-flight plans.
type PlanCache struct {
	planner *Planner
	mu      sync.Mutex
	plans   map[*graph.Graph]*Plan
}

// NewPlanCache returns a cache planning with the given options.
func NewPlanCache(opt Options) *PlanCache {
	return &PlanCache{planner: NewPlanner(opt), plans: map[*graph.Graph]*Plan{}}
}

// For returns (building on first use) the plan for g.
func (pc *PlanCache) For(g *graph.Graph) *Plan {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if p, ok := pc.plans[g]; ok {
		return p
	}
	p := pc.planner.PlanGraph(g)
	pc.plans[g] = p
	return p
}

// Peek returns the cached plan for g without building one; nil when no
// sharded query has planned g yet. Stats endpoints use it so that
// observing shard state never pays (or hides) the cost of planning.
func (pc *PlanCache) Peek(g *graph.Graph) *Plan {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.plans[g]
}

// Len reports how many graphs have cached plans (hierarchical evaluation
// plans each summary layer it routes a sharded query to).
func (pc *PlanCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.plans)
}

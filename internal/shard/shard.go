// Package shard executes one keyword-search query across many workers by
// decomposing the backward expansions of bkws/bidir over the edge-cut
// partitioning of internal/partition — the BLINKS/EMBANKS decomposition:
// expansion stays block-local, and frontiers cross block boundaries only
// through portal vertices, stitched back together by a coordinator.
//
// Three roles:
//
//   - Planner materializes per-block sub-indexes (block-local in-adjacency
//     in CSR form plus portal adjacency annotated with the owning block)
//     from a partition.Partitioning.
//   - Executor is a bounded worker pool; each unit of work is one
//     per-(keyword × block) expansion round or one verification chunk.
//   - Coordinator runs the level-synchronous scatter-gather: it routes
//     portal-crossing frontier messages to the owning block between
//     rounds, merges newly settled vertices into the per-root Σdist
//     bookkeeping, and early-stops the whole fleet once no undiscovered
//     root can beat the current k-th answer.
//
// The Coordinator talks to shards exclusively through the request/response
// structs below (ShardServer) — no shared mutable per-query state crosses
// that boundary. This is deliberately the stage-2 seam: a network shard
// server implementing ShardServer over RPC drops in behind the same
// Coordinator (see DESIGN.md §9). Stage 1 runs everything in-process
// (Local), where "RPC" is a function call and the plan is shared memory.
//
// Answers are byte-identical to the sequential bkws/bidir paths at every
// worker count: the level-synchronous rounds compute the same exact BFS
// distances, matches are sorted by the same total (score, Key) order, and
// the strict Σdist early-stop bound admits exactly the exhaustive top-k
// prefix (see the tie-safety note in bkws.SearchCtx).
package shard

import (
	"context"

	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/search"
)

// DefaultBlockSize is the partition target block size when Options leaves
// it zero — the same default Blinks uses, so one partition can back both.
const DefaultBlockSize = 200

// Options configures sharded execution.
type Options struct {
	// Workers is the executor pool size — the number of per-(keyword ×
	// block) expansions in flight at once. Values below 1 mean 1 (the
	// sharded protocol still runs, on a single worker).
	Workers int
	// BlockSize is the partition target block size (0 = DefaultBlockSize).
	BlockSize int
	// Seed controls partition.BFSGrowSeed's seed order (0 = ascending).
	Seed int64
	// Cache, when non-nil, shares plans across Algorithm instances (the
	// server shares one cache across worker-count variants so the plan is
	// built once per index version, not once per &shards= value).
	Cache *PlanCache
	// Metrics, when non-nil, receives the bigindex_shard_* counters.
	Metrics *Metrics
}

func (o Options) blockSize() int {
	if o.BlockSize < 1 {
		return DefaultBlockSize
	}
	return o.BlockSize
}

// ExpandRequest asks the shard owning Block to run one level-synchronous
// round of keyword Kw's backward expansion.
//
// Inject lists vertices of the block discovered from other blocks (portal
// crossings routed by the coordinator) as candidates at distance Level;
// the shard settles the not-yet-seen ones. The round's frontier is those
// newly settled injections plus the block-local vertices the shard itself
// settled at Level during the previous round (kept in shard state, never
// round-tripped). When Expand is set the shard expands the frontier one
// hop along block-local in-edges; crossings out of the block are returned
// in Outbox for the coordinator to route.
type ExpandRequest struct {
	Query uint64
	Kw    int
	Block int
	Level int32
	// Inject is empty for most rounds of most blocks; round 0 injects the
	// keyword's posting-list seeds at Level 0.
	Inject []graph.V
	// Expand is false on the final (Level == dmax) round: vertices at the
	// distance bound are settled — they are valid witnesses — but not
	// expanded further.
	Expand bool
}

// PortalMsg is one frontier crossing: vertex V (owned by Block) was
// reached from another block and is a settlement candidate at the next
// level. The classic portal-stitching message of bi-level search.
type PortalMsg struct {
	V     graph.V
	Block int32
}

// ExpandResponse reports one round's outcome. Every vertex the shard
// settled this round appears exactly once — in Accepted (settled at the
// request's Level, from Inject) or in Next (settled at Level+1 by local
// expansion) — which is what lets the coordinator keep exact Σdist
// bookkeeping without sharing memory with the shard.
type ExpandResponse struct {
	Kw       int
	Block    int
	Accepted []graph.V
	Next     []graph.V
	Outbox   []PortalMsg
	// Expanded counts frontier vertices whose adjacency was scanned (the
	// ledger's vertices-expanded unit).
	Expanded int
}

// VerifyRequest asks a shard to verify candidate roots by forward
// expansion (bidir's verification phase): exact minimum distances from
// each root to every query label within DMax. Verification reads only the
// immutable graph, so any shard can serve any root; in stage 2 the layer-0
// CSR is replicated (or verification is itself fanned out), recorded as
// part of the seam in DESIGN.md §9.
type VerifyRequest struct {
	Query  uint64
	Labels []graph.Label
	DMax   int
	Roots  []graph.V
}

// VerifyResponse carries the matches of the roots that verified, in root
// order, plus the number of roots attempted (the bidir work unit).
type VerifyResponse struct {
	Matches  []search.Match
	Verified int
}

// ShardServer is the coordinator-facing boundary. BeginQuery/EndQuery
// bracket one query's distributed state (per-block distance arrays and
// held-over local frontiers), keyed by a coordinator-chosen id so
// concurrent queries never share state.
type ShardServer interface {
	BeginQuery(id uint64, numKeywords int)
	Expand(ctx context.Context, req *ExpandRequest) *ExpandResponse
	Verify(ctx context.Context, req *VerifyRequest) *VerifyResponse
	EndQuery(id uint64)
}

// Metrics is the bigindex_shard_* instrument set, shared by every sharded
// evaluator of a server.
type Metrics struct {
	Queries *obs.CounterVec // sharded searches by algo and worker count
	Tasks   *obs.Counter    // per-(keyword × block) expansion rounds dispatched
	Portal  *obs.Counter    // portal-crossing frontier messages routed
	Rounds  *obs.Histogram  // level-synchronous rounds per sharded search
}

// NewMetrics registers the shard metrics on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Queries: reg.CounterVec("bigindex_shard_queries_total",
			"Sharded searches by algorithm and worker count.", "algo", "workers"),
		Tasks: reg.Counter("bigindex_shard_tasks_total",
			"Per-(keyword x block) expansion tasks dispatched to shard workers."),
		Portal: reg.Counter("bigindex_shard_portal_messages_total",
			"Portal-crossing frontier messages routed between blocks."),
		Rounds: reg.Histogram("bigindex_shard_rounds",
			"Level-synchronous rounds per sharded search.",
			[]float64{1, 2, 3, 4, 5, 6, 8, 12, 16}),
	}
}

// Package shard executes one keyword-search query across many workers by
// decomposing the backward expansions of bkws/bidir over the edge-cut
// partitioning of internal/partition — the BLINKS/EMBANKS decomposition:
// expansion stays block-local, and frontiers cross block boundaries only
// through portal vertices, stitched back together by a coordinator.
//
// Three roles:
//
//   - Planner materializes per-block sub-indexes (block-local in-adjacency
//     in CSR form plus portal adjacency annotated with the owning block)
//     from a partition.Partitioning.
//   - Executor is a bounded worker pool; each unit of work is one
//     per-(keyword × block) expansion round or one verification chunk.
//   - Coordinator runs the level-synchronous scatter-gather: it routes
//     portal-crossing frontier messages to the owning block between
//     rounds, merges newly settled vertices into the per-root Σdist
//     bookkeeping, and early-stops the whole fleet once no undiscovered
//     root can beat the current k-th answer.
//
// The Coordinator talks to shards exclusively through the request/response
// structs below (ShardServer), and the protocol is stateless by design:
// an ExpandRequest carries the exact frontier to expand, and the shard
// answers from the immutable plan alone — no per-query state lives on the
// shard side. Statelessness is what makes the network boundary
// (internal/shardrpc) survivable: a round request is a pure function of
// (plan, request), so it can be retried, duplicated, hedged, or failed
// over to a different replica mid-query with no resynchronization and no
// risk of double-counting — the coordinator's mirror is the only
// authority on what is settled (see DESIGN.md §9).
//
// Answers are byte-identical to the sequential bkws/bidir paths at every
// worker count: the level-synchronous rounds compute the same exact BFS
// distances, matches are sorted by the same total (score, Key) order, and
// the strict Σdist early-stop bound admits exactly the exhaustive top-k
// prefix (see the tie-safety note in bkws.SearchCtx).
package shard

import (
	"context"

	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/search"
)

// DefaultBlockSize is the partition target block size when Options leaves
// it zero — the same default Blinks uses, so one partition can back both.
const DefaultBlockSize = 200

// Options configures sharded execution.
type Options struct {
	// Workers is the executor pool size — the number of per-(keyword ×
	// block) expansions in flight at once. Values below 1 mean 1 (the
	// sharded protocol still runs, on a single worker).
	Workers int
	// BlockSize is the partition target block size (0 = DefaultBlockSize).
	BlockSize int
	// Seed controls partition.BFSGrowSeed's seed order (0 = ascending).
	Seed int64
	// Cache, when non-nil, shares plans across Algorithm instances (the
	// server shares one cache across worker-count variants so the plan is
	// built once per index version, not once per &shards= value).
	Cache *PlanCache
	// Server, when non-nil, supplies the ShardServer a prepared search's
	// coordinator dispatches to for the given plan — the stage-2 hook: the
	// HTTP server plugs in a shardrpc client here when remote peers are
	// configured and the plan's graph matches what they serve. Returning
	// nil falls back to the in-process Local, as does leaving Server nil.
	Server func(*Plan) ShardServer
	// Metrics, when non-nil, receives the bigindex_shard_* counters.
	Metrics *Metrics
}

func (o Options) blockSize() int {
	if o.BlockSize < 1 {
		return DefaultBlockSize
	}
	return o.BlockSize
}

// ExpandRequest asks the shard owning Block to expand one frontier of
// keyword Kw's backward expansion one hop along block-local in-edges.
//
// Frontier lists the block's vertices the coordinator settled at distance
// Level this round — the complete input; the shard holds no memory of
// earlier rounds. The response reports every in-block in-neighbor reached
// (Local) and every crossing out of the block (Outbox); the coordinator
// alone decides which of those are new settlements. Because the request
// carries its whole input and the plan is immutable, Expand is idempotent
// and replica-agnostic: the same request sent twice, to two replicas, or
// to a replica that never saw rounds 0..Level-1 returns the same answer.
type ExpandRequest struct {
	Kw    int
	Block int
	Level int32
	// Frontier is non-empty: slots with nothing newly settled get no
	// request at all.
	Frontier []graph.V
}

// PortalMsg is one frontier crossing: vertex V (owned by Block) was
// reached from another block and is a settlement candidate at the next
// level. The classic portal-stitching message of bi-level search.
type PortalMsg struct {
	V     graph.V
	Block int32
}

// ExpandResponse reports one round's outcome: the frontier's in-block
// in-neighbors (Local, deduplicated within the response — settlement
// candidates at Level+1 in the same block) and the portal crossings
// (Outbox). The shard cannot know which candidates the coordinator
// already settled in earlier rounds; the coordinator's mirror filters
// duplicates, which is what keeps the protocol stateless.
type ExpandResponse struct {
	Kw     int
	Block  int
	Local  []graph.V
	Outbox []PortalMsg
	// Expanded counts frontier vertices whose adjacency was scanned (the
	// ledger's vertices-expanded unit).
	Expanded int
}

// VerifyRequest asks a shard to verify candidate roots by forward
// expansion (bidir's verification phase): exact minimum distances from
// each root to every query label within DMax. Verification reads only the
// immutable graph, so any shard or replica can serve any root — like
// Expand it is a pure function of the plan, retryable and hedgeable.
type VerifyRequest struct {
	Labels []graph.Label
	DMax   int
	Roots  []graph.V
}

// VerifyResponse carries the matches of the roots that verified, in root
// order, plus the number of roots attempted (the bidir work unit).
type VerifyResponse struct {
	Matches  []search.Match
	Verified int
}

// ShardServer is the coordinator-facing boundary. Both calls are pure
// functions of the immutable plan and the request. An error means the
// shard could not serve the request at all (network failure, every
// replica down, mismatched graph); a served-but-cancelled request returns
// a partial response and no error. The in-process Local never fails; the
// shardrpc client surfaces terminal transport failures here, and the
// coordinator turns them into coverage loss, never into wrong answers.
type ShardServer interface {
	Expand(ctx context.Context, req *ExpandRequest) (*ExpandResponse, error)
	Verify(ctx context.Context, req *VerifyRequest) (*VerifyResponse, error)
}

// Metrics is the bigindex_shard_* instrument set, shared by every sharded
// evaluator of a server.
type Metrics struct {
	Queries *obs.CounterVec // sharded searches by algo and worker count
	Tasks   *obs.Counter    // per-(keyword × block) expansion rounds dispatched
	Portal  *obs.Counter    // portal-crossing frontier messages routed
	Rounds  *obs.Histogram  // level-synchronous rounds per sharded search
	Lost    *obs.Counter    // (keyword × block) slots abandoned to shard failure
}

// NewMetrics registers the shard metrics on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Queries: reg.CounterVec("bigindex_shard_queries_total",
			"Sharded searches by algorithm and worker count.", "algo", "workers"),
		Tasks: reg.Counter("bigindex_shard_tasks_total",
			"Per-(keyword x block) expansion tasks dispatched to shard workers."),
		Portal: reg.Counter("bigindex_shard_portal_messages_total",
			"Portal-crossing frontier messages routed between blocks."),
		Rounds: reg.Histogram("bigindex_shard_rounds",
			"Level-synchronous rounds per sharded search.",
			[]float64{1, 2, 3, 4, 5, 6, 8, 12, 16}),
		Lost: reg.Counter("bigindex_shard_lost_blocks_total",
			"Blocks abandoned mid-query because every replica failed past budget."),
	}
}

package shard_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"bigindex/internal/graph"
	"bigindex/internal/partition"
	"bigindex/internal/search"
	"bigindex/internal/search/bidir"
	"bigindex/internal/search/bkws"
	"bigindex/internal/shard"
)

// randomGraph builds a graph with nLabels distinct labels spread
// zipf-ishly (label i appears roughly n/(i+1) times), the shape that
// exercises both frequent- and selective-keyword paths.
func randomGraph(rng *rand.Rand, n, e, nLabels int) *graph.Graph {
	b := graph.NewBuilder(nil)
	labels := make([]graph.Label, nLabels)
	for i := range labels {
		labels[i] = b.Dict().Intern(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		// Biased toward low label indices: frequent labels exist.
		li := rng.Intn(nLabels)
		if rng.Intn(2) == 0 {
			li = rng.Intn(1 + li/2)
		}
		b.AddVertexLabel(labels[li])
	}
	for i := 0; i < e; i++ {
		b.AddEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
	}
	return b.Build()
}

func randomQuery(rng *rand.Rand, g *graph.Graph, size int) []graph.Label {
	all := g.DistinctLabels()
	if size > len(all) {
		size = len(all)
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:size]
}

// assertIdentical fails unless got is byte-identical to want: same
// matches, same order, same roots, dists, scores, and witness nodes.
func assertIdentical(t *testing.T, label string, want, got []search.Match) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: got %d matches, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("%s: match %d differs\n got: %+v\nwant: %+v", label, i, got[i], want[i])
		}
	}
}

// TestBKWSEquivalence is the tentpole's contract: sharded bkws output is
// byte-identical to the sequential path for every worker count, block
// size, and k — including k <= 0 (exhaustive) and top-k with score ties
// at the k-th boundary.
func TestBKWSEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const dmax = 4
	for trial := 0; trial < 25; trial++ {
		n := 30 + rng.Intn(250)
		g := randomGraph(rng, n, n+rng.Intn(3*n), 3+rng.Intn(6))
		seqPrep, err := bkws.New(dmax).Prepare(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range []int{2, 3, 4} {
			q := randomQuery(rng, g, size)
			for _, k := range []int{0, 1, 3, 10} {
				want, err := seqPrep.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 2, 4, 8} {
					for _, bs := range []int{7, 64} {
						algo := bkws.NewSharded(dmax, shard.Options{Workers: workers, BlockSize: bs})
						prep, err := algo.Prepare(g)
						if err != nil {
							t.Fatal(err)
						}
						got, err := prep.Search(q, k)
						if err != nil {
							t.Fatal(err)
						}
						assertIdentical(t, "bkws", want, got)
					}
				}
			}
		}
	}
}

// TestBidirEquivalence is the same contract for bidirectional expansion.
func TestBidirEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const dmax = 4
	for trial := 0; trial < 25; trial++ {
		n := 30 + rng.Intn(250)
		g := randomGraph(rng, n, n+rng.Intn(3*n), 3+rng.Intn(6))
		seqPrep, err := bidir.New(dmax).Prepare(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range []int{2, 3, 4} {
			q := randomQuery(rng, g, size)
			for _, k := range []int{0, 1, 3, 10} {
				want, err := seqPrep.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 2, 4, 8} {
					for _, bs := range []int{7, 64} {
						algo := bidir.NewSharded(dmax, shard.Options{Workers: workers, BlockSize: bs})
						prep, err := algo.Prepare(g)
						if err != nil {
							t.Fatal(err)
						}
						got, err := prep.Search(q, k)
						if err != nil {
							t.Fatal(err)
						}
						assertIdentical(t, "bidir", want, got)
					}
				}
			}
		}
	}
}

// TestPlanCoversAdjacency checks the Planner's sub-index invariant: each
// vertex's in-adjacency is exactly the union of its block-local rows and
// its portal rows, with portal messages naming the true owning block.
func TestPlanCoversAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(200)
		g := randomGraph(rng, n, rng.Intn(4*n), 4)
		p := partition.BFSGrowSeed(g, 1+rng.Intn(30), rng.Int63())
		plan := shard.NewPlanner(shard.Options{}).Plan(p)
		if plan.NumBlocks() != p.NumBlocks() {
			t.Fatalf("plan has %d blocks, partitioning %d", plan.NumBlocks(), p.NumBlocks())
		}
		if plan.EdgeCut() != p.EdgeCut() {
			t.Fatalf("plan edge cut %d != partitioning %d", plan.EdgeCut(), p.EdgeCut())
		}
		local, remote := plan.AdjacencyOf()
		for v := 0; v < n; v++ {
			want := append([]graph.V(nil), g.In(graph.V(v))...)
			var got []graph.V
			got = append(got, local[v]...)
			for _, msg := range remote[v] {
				if int(msg.Block) != p.BlockOf[msg.V] {
					t.Fatalf("portal msg for %d names block %d, owner is %d", msg.V, msg.Block, p.BlockOf[msg.V])
				}
				got = append(got, msg.V)
			}
			if len(want) != len(got) {
				t.Fatalf("vertex %d: adjacency split %d != in-degree %d", v, len(got), len(want))
			}
			seen := map[graph.V]int{}
			for _, u := range want {
				seen[u]++
			}
			for _, u := range got {
				seen[u]--
			}
			for u, c := range seen {
				if c != 0 {
					t.Fatalf("vertex %d: neighbor %d split mismatch", v, u)
				}
			}
		}
	}
}

// TestCancellation: a cancelled context yields the context error and a
// sound (possibly empty) prefix of the exhaustive answers.
func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 300, 900, 5)
	q := randomQuery(rng, g, 3)
	const dmax = 4
	exhaustive := map[string]float64{}
	seqPrep, _ := bkws.New(dmax).Prepare(g)
	full, err := seqPrep.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range full {
		exhaustive[m.Key()] = m.Score
	}
	for _, mk := range []func() search.Algorithm{
		func() search.Algorithm { return bkws.NewSharded(dmax, shard.Options{Workers: 4, BlockSize: 32}) },
		func() search.Algorithm { return bidir.NewSharded(dmax, shard.Options{Workers: 4, BlockSize: 32}) },
	} {
		prep, err := mk().Prepare(g)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ms, err := prep.SearchCtx(ctx, q, 0)
		if err == nil {
			t.Fatal("cancelled search returned nil error")
		}
		for _, m := range ms {
			want, ok := exhaustive[m.Key()]
			if !ok || want != m.Score {
				t.Fatalf("partial result %+v is not a true answer", m)
			}
		}
	}
}

// TestEmptyAndMissingKeywords mirrors the sequential edge cases.
func TestEmptyAndMissingKeywords(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 50, 120, 3)
	missing := g.Dict().Intern("never-used-label")
	for _, mk := range []search.Algorithm{
		bkws.NewSharded(3, shard.Options{Workers: 2, BlockSize: 8}),
		bidir.NewSharded(3, shard.Options{Workers: 2, BlockSize: 8}),
	} {
		prep, err := mk.Prepare(g)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := prep.Search(nil, 5); err == nil {
			t.Fatal("empty query did not error")
		}
		ms, err := prep.Search([]graph.Label{g.Label(0), missing}, 5)
		if err != nil || ms != nil {
			t.Fatalf("missing keyword: got %v, %v; want nil, nil", ms, err)
		}
	}
}

// TestExecutorMap: every index runs exactly once, worker ids stay dense.
func TestExecutorMap(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		ex := shard.NewExecutor(workers)
		if ex.Workers() != workers {
			t.Fatalf("workers = %d, want %d", ex.Workers(), workers)
		}
		const n = 500
		counts := make([]int32, n)
		ex.Map(n, func(i, worker int) {
			if worker < 0 || worker >= workers {
				t.Errorf("worker id %d out of range", worker)
			}
			counts[i]++
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("task %d ran %d times", i, c)
			}
		}
	}
}

// TestPlanCacheIdentity: one plan per graph pointer, across worker-count
// variants sharing a cache.
func TestPlanCacheIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 80, 160, 3)
	pc := shard.NewPlanCache(shard.Options{BlockSize: 16})
	if pc.For(g) != pc.For(g) {
		t.Fatal("cache rebuilt plan for same graph")
	}
	g2 := randomGraph(rng, 80, 160, 3)
	if pc.For(g) == pc.For(g2) {
		t.Fatal("distinct graphs shared a plan")
	}
}

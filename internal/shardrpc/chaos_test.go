package shardrpc

import (
	"context"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"bigindex/internal/faultio"
	"bigindex/internal/graph"
	"bigindex/internal/search"
	"bigindex/internal/search/bkws"
	"bigindex/internal/shard"
)

// chaosCase is one deterministic network fault, injectable on the server
// side (responses mangled) or the client side (requests mangled).
type chaosCase struct {
	name       string
	serverSide bool
	plan       faultio.ConnPlan
}

// chaosMatrix covers every ConnPlan fault at several protocol offsets:
// inside the length prefix (offset < 4), inside the frame body, and deep
// into a multi-frame stream.
var chaosMatrix = []chaosCase{
	{"server-delay", true, faultio.ConnPlan{DelayWrites: 15 * time.Millisecond}},
	{"server-duplicate-frames", true, faultio.ConnPlan{DuplicateWrites: true}},
	{"server-corrupt-len-prefix", true, faultio.ConnPlan{CorruptWriteAt: 2}},
	{"server-corrupt-frame-body", true, faultio.ConnPlan{CorruptWriteAt: 15}},
	{"server-corrupt-late", true, faultio.ConnPlan{CorruptWriteAt: 300}},
	{"server-truncate-and-close", true, faultio.ConnPlan{WriteBudget: 10, CloseAfterBudget: true}},
	{"server-blackhole", true, faultio.ConnPlan{WriteBudget: 10}},
	{"client-corrupt-request", false, faultio.ConnPlan{CorruptWriteAt: 6}},
	{"client-truncate-request", false, faultio.ConnPlan{WriteBudget: 5, CloseAfterBudget: true}},
	{"client-blackhole-request", false, faultio.ConnPlan{WriteBudget: 5}},
	{"client-dup-delay-request", false, faultio.ConnPlan{DuplicateWrites: true, DelayWrites: 5 * time.Millisecond}},
}

// chaosServer starts a server whose accepted connections are shaped by
// plans (nil return: clean connection).
func chaosServer(t *testing.T, plan *shard.Plan, pick func(i int) *faultio.ConnPlan) (*Server, string) {
	t.Helper()
	srv := NewServer(plan, ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.ServeListener(&faultio.FaultListener{Listener: ln, Plan: pick})
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// chaosDial wraps the client's dialed connections with plans by dial
// order (nil: clean).
func chaosDial(pick func(i int) *faultio.ConnPlan) func(string, time.Duration) (net.Conn, error) {
	var n atomic.Int64
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		if p := pick(int(n.Add(1)) - 1); p != nil {
			return faultio.WrapConn(conn, *p), nil
		}
		return conn, nil
	}
}

// runQuery executes one full sharded query through the given
// ShardServer factory, returning matches plus the coverage report.
func runQuery(t *testing.T, g *graph.Graph, q []graph.Label, factory func(*shard.Plan) shard.ShardServer, timeout time.Duration) ([]search.Match, *shard.CoverageReport, error) {
	t.Helper()
	algo := shard.New(shard.ModeBKWS, 4, shard.Options{Workers: 4, BlockSize: 16, Server: factory})
	prep, err := algo.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	cov := shard.NewCoverage()
	ctx = shard.ContextWithCoverage(ctx, cov)
	got, err := prep.(interface {
		SearchCtx(context.Context, []graph.Label, int) ([]search.Match, error)
	}).SearchCtx(ctx, q, 5)
	return got, cov.Report(), err
}

// sequentialAnswer is the byte-identical ground truth (top-5, like the
// chaos queries) for healthy runs; k <= 0 gives the exhaustive answer
// set soundness checks need (a degraded run may return true matches
// that rank below the full graph's top-5).
func sequentialAnswer(t *testing.T, g *graph.Graph, q []graph.Label, k int) []search.Match {
	t.Helper()
	prep, err := bkws.New(4).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := prep.Search(q, k)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// assertSound checks every returned match is a true full-graph answer
// with its exact score — the degraded-mode contract.
func assertSound(t *testing.T, label string, got, truth []search.Match) {
	t.Helper()
	byRoot := make(map[graph.V]search.Match, len(truth))
	for _, m := range truth {
		byRoot[m.Root] = m
	}
	for _, m := range got {
		want, ok := byRoot[m.Root]
		if !ok {
			t.Fatalf("%s: root %d is not an answer of the full graph", label, m.Root)
		}
		if !reflect.DeepEqual(m.Dists, want.Dists) || m.Score != want.Score {
			t.Fatalf("%s: root %d has dists %v score %v, truth %v %v", label, m.Root, m.Dists, m.Score, want.Dists, want.Score)
		}
	}
}

// TestChaosMatrixTransientFault injects each fault into the FIRST
// connection only, against a single replica: the client must retry onto
// a clean connection and produce a byte-identical answer.
func TestChaosMatrixTransientFault(t *testing.T) {
	g := testGraph(20, 90)
	q := g.DistinctLabels()[:2]
	want := sequentialAnswer(t, g, q, 5)
	const deadline = 5 * time.Second

	for _, tc := range chaosMatrix {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			firstOnly := func(i int) *faultio.ConnPlan {
				if i == 0 {
					p := tc.plan
					return &p
				}
				return nil
			}
			var srvPick, dialPick func(i int) *faultio.ConnPlan
			if tc.serverSide {
				srvPick = firstOnly
			} else {
				dialPick = firstOnly
			}
			_, addr := chaosServer(t, testPlan(t, g, 16), srvPick)
			var dial func(string, time.Duration) (net.Conn, error)
			if dialPick != nil {
				dial = chaosDial(dialPick)
			}
			c := NewClient(ClientOptions{
				Peers:       mustPeers(t, addr),
				CallTimeout: 500 * time.Millisecond,
				Dial:        dial,
			})
			defer c.Close()

			start := time.Now()
			got, cov, err := runQuery(t, g, q, func(p *shard.Plan) shard.ShardServer { return c.For(p) }, deadline)
			if err != nil {
				t.Fatalf("query error: %v", err)
			}
			if elapsed := time.Since(start); elapsed > deadline+time.Second {
				t.Fatalf("query ran %v, past deadline+grace", elapsed)
			}
			if cov != nil {
				t.Fatalf("transient fault should not degrade: %+v", cov)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("answer differs after retry\n got: %v\nwant: %v", got, want)
			}
		})
	}
}

// TestChaosMatrixPersistentFaultWithReplica injects each fault into
// EVERY connection touching replica A, with clean replica B alongside:
// failover must still produce a byte-identical answer.
func TestChaosMatrixPersistentFaultWithReplica(t *testing.T) {
	g := testGraph(21, 90)
	q := g.DistinctLabels()[:2]
	want := sequentialAnswer(t, g, q, 5)
	const deadline = 8 * time.Second

	for _, tc := range chaosMatrix {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			plan := testPlan(t, g, 16)
			every := func(i int) *faultio.ConnPlan { p := tc.plan; return &p }
			var srvAPick func(i int) *faultio.ConnPlan
			if tc.serverSide {
				srvAPick = every
			}
			_, addrA := chaosServer(t, plan, srvAPick)
			_, addrB := startServer(t, plan, ServerOptions{})
			var dial func(string, time.Duration) (net.Conn, error)
			if !tc.serverSide {
				// Client-side faults on every conn dialed to A only.
				var n atomic.Int64
				dial = func(addr string, timeout time.Duration) (net.Conn, error) {
					conn, err := net.DialTimeout("tcp", addr, timeout)
					if err != nil {
						return nil, err
					}
					if addr == addrA {
						n.Add(1)
						return faultio.WrapConn(conn, tc.plan), nil
					}
					return conn, nil
				}
			}
			c := NewClient(ClientOptions{
				Peers:       mustPeers(t, addrA+";"+addrB),
				CallTimeout: 500 * time.Millisecond,
				Dial:        dial,
			})
			defer c.Close()

			start := time.Now()
			got, cov, err := runQuery(t, g, q, func(p *shard.Plan) shard.ShardServer { return c.For(p) }, deadline)
			if err != nil {
				t.Fatalf("query error: %v", err)
			}
			if elapsed := time.Since(start); elapsed > deadline+time.Second {
				t.Fatalf("query ran %v, past deadline+grace", elapsed)
			}
			if cov != nil {
				t.Fatalf("replica should absorb a persistent fault: %+v", cov)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("answer differs under failover\n got: %v\nwant: %v", got, want)
			}
		})
	}
}

// TestChaosTotalLossDegradesInTime black-holes the only replica after
// its first connection: the query must come back within the deadline,
// sound, with coverage honestly below full.
func TestChaosTotalLossDegradesInTime(t *testing.T) {
	g := testGraph(22, 90)
	q := g.DistinctLabels()[:2]
	truth := sequentialAnswer(t, g, q, 0)
	plan := testPlan(t, g, 16)

	// Every connection is a black hole: accepted, requests swallowed.
	_, addr := chaosServer(t, plan, func(i int) *faultio.ConnPlan {
		return &faultio.ConnPlan{WriteBudget: 1}
	})
	c := NewClient(ClientOptions{
		Peers:       mustPeers(t, addr),
		CallTimeout: 250 * time.Millisecond,
	})
	defer c.Close()

	const deadline = 4 * time.Second
	start := time.Now()
	got, cov, err := runQuery(t, g, q, func(p *shard.Plan) shard.ShardServer { return c.For(p) }, deadline)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("total loss must degrade, not error: %v", err)
	}
	if elapsed > deadline+time.Second {
		t.Fatalf("query ran %v, past deadline+grace", elapsed)
	}
	if cov == nil || !(cov.Fraction < 1 || cov.RootsUnverified > 0) {
		t.Fatalf("coverage claims full despite a dead fleet: %+v", cov)
	}
	if cov.BlocksLost == 0 && cov.RootsUnverified == 0 {
		t.Fatalf("no loss recorded: %+v", cov)
	}
	assertSound(t, "total-loss", got, truth)
}

// killAfterN wraps a bound ShardServer and fires kill exactly once after
// n successful Expand responses — killing the server process mid-round,
// between one block's response and the next dispatch.
type killAfterN struct {
	inner shard.ShardServer
	kill  func()
	n     int32
	seen  atomic.Int32
	fired atomic.Bool
}

func (k *killAfterN) Expand(ctx context.Context, req *shard.ExpandRequest) (*shard.ExpandResponse, error) {
	resp, err := k.inner.Expand(ctx, req)
	if err == nil && k.seen.Add(1) >= k.n && k.fired.CompareAndSwap(false, true) {
		k.kill()
	}
	return resp, err
}

func (k *killAfterN) Verify(ctx context.Context, req *shard.VerifyRequest) (*shard.VerifyResponse, error) {
	return k.inner.Verify(ctx, req)
}

// TestMidRoundKillFailsOverToReplica kills replica A (abruptly, linger
// zero) right after an early Expand lands, with replica B alive: the
// query must still be byte-identical with full coverage.
func TestMidRoundKillFailsOverToReplica(t *testing.T) {
	g := testGraph(23, 120)
	q := g.DistinctLabels()[:2]
	want := sequentialAnswer(t, g, q, 5)
	plan := testPlan(t, g, 16)

	srvA, addrA := startServer(t, plan, ServerOptions{})
	_, addrB := startServer(t, plan, ServerOptions{})
	c := NewClient(ClientOptions{
		Peers:       mustPeers(t, addrA+";"+addrB),
		CallTimeout: 500 * time.Millisecond,
	})
	defer c.Close()

	got, cov, err := runQuery(t, g, q, func(p *shard.Plan) shard.ShardServer {
		return &killAfterN{inner: c.For(p), kill: srvA.Kill, n: 2}
	}, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cov != nil {
		t.Fatalf("replica must sustain full coverage through the kill: %+v", cov)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("answer differs after mid-round kill\n got: %v\nwant: %v", got, want)
	}
}

// TestMidRoundKillDegradesThenRecovers kills the ONLY shard server
// mid-query: the query must return within its deadline, degraded with
// accurate coverage and only-true answers. After a restart on the same
// address, the next query must be byte-identical with clean coverage.
func TestMidRoundKillDegradesThenRecovers(t *testing.T) {
	g := testGraph(24, 120)
	q := g.DistinctLabels()[:2]
	truth := sequentialAnswer(t, g, q, 0)
	plan := testPlan(t, g, 16)

	srv, addr := startServer(t, plan, ServerOptions{})
	c := NewClient(ClientOptions{
		Peers:       mustPeers(t, addr),
		CallTimeout: 250 * time.Millisecond,
		// Keep the breaker out of the recovery's way: this test pins the
		// retry/degrade path, the breaker has its own test.
		BreakerThreshold: 1000,
	})
	defer c.Close()

	const deadline = 4 * time.Second
	start := time.Now()
	got, cov, err := runQuery(t, g, q, func(p *shard.Plan) shard.ShardServer {
		return &killAfterN{inner: c.For(p), kill: srv.Kill, n: 2}
	}, deadline)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("killed-shard query must degrade, not error: %v", err)
	}
	if elapsed > deadline+time.Second {
		t.Fatalf("query ran %v, past deadline+grace", elapsed)
	}
	if cov == nil || !(cov.Fraction < 1 || cov.RootsUnverified > 0) {
		t.Fatalf("kill left no coverage trace: %+v", cov)
	}
	assertSound(t, "mid-round kill", got, truth)

	// Restart on the same address and verify full recovery.
	srv2 := NewServer(plan, ServerOptions{})
	var lerr error
	for i := 0; i < 20; i++ { // the old port can take a moment to free
		if _, lerr = srv2.Listen(addr); lerr == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if lerr != nil {
		t.Fatalf("restart on %s: %v", addr, lerr)
	}
	defer srv2.Close()

	want := sequentialAnswer(t, g, q, 5)
	got2, cov2, err := runQuery(t, g, q, func(p *shard.Plan) shard.ShardServer { return c.For(p) }, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if cov2 != nil {
		t.Fatalf("post-restart query still degraded: %+v", cov2)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("post-restart answer differs\n got: %v\nwant: %v", got2, want)
	}
}

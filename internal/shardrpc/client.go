package shardrpc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bigindex/internal/obs"
	"bigindex/internal/retry"
	"bigindex/internal/shard"
)

// Client resilience defaults.
const (
	defaultDialTimeout    = 500 * time.Millisecond
	defaultCallTimeout    = 2 * time.Second
	defaultMinAttempt     = 25 * time.Millisecond
	defaultMaxAttempts    = 4
	defaultBackoffMin     = 10 * time.Millisecond
	defaultBackoffMax     = 250 * time.Millisecond
	defaultBreakThreshold = 3
	defaultBreakCooldown  = time.Second
	defaultHedgeDelay     = 50 * time.Millisecond // until p99 samples exist
	minHedgeDelay         = 2 * time.Millisecond
	maxHedgeDelay         = 200 * time.Millisecond
	latWindowSize         = 128
)

// Metrics is the client-side instrument set.
type Metrics struct {
	Calls        *obs.CounterVec   // op, outcome: ok|remote_error|network_error
	Retries      *obs.Counter      // attempts beyond the first
	Hedges       *obs.CounterVec   // outcome: won|lost
	BreakerOpens *obs.Counter      // closed/half-open -> open transitions
	Seconds      *obs.HistogramVec // op

	// Per-peer telemetry: the fleet-wide aggregates above answer "is the
	// RPC layer healthy"; these answer "which peer".
	PeerCalls          *obs.CounterVec   // peer, op, outcome
	PeerSeconds        *obs.HistogramVec // peer; exemplars carry trace IDs
	PeerBytes          *obs.CounterVec   // peer, dir: sent|recv
	BreakerTransitions *obs.CounterVec   // peer, to: open|half-open|closed
}

// NewMetrics registers the bigindex_shardrpc_* metrics on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Calls: reg.CounterVec("bigindex_shardrpc_calls_total",
			"Shard RPC attempts by operation and outcome.", "op", "outcome"),
		Retries: reg.Counter("bigindex_shardrpc_retries_total",
			"Shard RPC attempts beyond the first for a call."),
		Hedges: reg.CounterVec("bigindex_shardrpc_hedges_total",
			"Hedged shard RPC attempts by outcome.", "outcome"),
		BreakerOpens: reg.Counter("bigindex_shardrpc_breaker_opens_total",
			"Per-peer circuit breaker open transitions."),
		Seconds: reg.HistogramVec("bigindex_shardrpc_call_seconds",
			"Shard RPC attempt latency by operation.", nil, "op"),
		PeerCalls: reg.CounterVec("bigindex_shardrpc_peer_calls_total",
			"Shard RPC attempts by peer, operation, and outcome.", "peer", "op", "outcome"),
		PeerSeconds: reg.HistogramVec("bigindex_shardrpc_peer_seconds",
			"Shard RPC attempt latency by peer, with trace-ID exemplars.", nil, "peer"),
		PeerBytes: reg.CounterVec("bigindex_shardrpc_peer_bytes_total",
			"Shard RPC bytes on the wire by peer and direction (frame overhead included).", "peer", "dir"),
		BreakerTransitions: reg.CounterVec("bigindex_shardrpc_breaker_transitions_total",
			"Per-peer circuit breaker state transitions by destination state.", "peer", "to"),
	}
}

// ClientOptions configures a Client. Zero values take the defaults above.
type ClientOptions struct {
	Peers []Peer
	// BlockSize is the partition size the coordinator plans with; peers
	// advertising a different one are treated as not serving the plan.
	BlockSize int

	DialTimeout time.Duration
	// CallTimeout bounds a whole call (all attempts) when the context
	// carries no deadline of its own.
	CallTimeout time.Duration
	// MinAttemptTimeout floors the per-attempt slice carved from the
	// remaining budget, so many retries cannot starve each attempt below
	// a useful deadline.
	MinAttemptTimeout time.Duration
	// MaxAttempts caps attempts per call (first try included). Raised to
	// 2×len(peers) for the block when smaller, so every replica gets a
	// second chance before the call degrades.
	MaxAttempts int

	Backoff          retry.BackoffOptions
	BreakerThreshold int64
	BreakerCooldown  time.Duration

	// Hedge fires a second attempt at a different replica when the first
	// is slower than the observed p99 — tail latency insurance, sound
	// because requests are pure.
	Hedge bool
	// HedgeDelay overrides the p99-derived hedge delay (0: derive).
	HedgeDelay time.Duration

	// MaxIdleConns caps pooled connections per peer.
	MaxIdleConns int

	// TelemetrySample is the head-sampling probability for distributed
	// tracing: a query whose trace hashes under it carries a telemetry
	// header on every shard RPC (to peers that negotiated capTelemetry),
	// and the peers' span/ledger summaries are stitched back into the
	// query's trace. 0 disables (the default); answers are byte-identical
	// either way. The decision is a deterministic hash of the trace ID so
	// every call of one query agrees.
	TelemetrySample float64

	// Dial replaces net.DialTimeout — the fault-injection hook.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)

	Metrics *Metrics
	Logger  *slog.Logger
}

// PeerHealth is one peer's snapshot for /stats and /readyz.
type PeerHealth struct {
	Addr    string `json:"addr"`
	Blocks  string `json:"blocks"`
	State   string `json:"state"` // healthy | degraded | open-breaker
	Fails   int64  `json:"fails"`
	Calls   int64  `json:"calls"`
	LastErr string `json:"last_error,omitempty"`
}

// Client fans shard rounds out to replica peers, surviving slow, dead,
// lying, and half-open networks: per-attempt deadlines carved from the
// caller's budget, retries with full-jitter backoff, failover across
// replicas, optional hedging, and a circuit breaker per peer.
type Client struct {
	opt   ClientOptions
	peers []*peer
	rr    atomic.Uint64 // round-robin cursor, decorrelates replica choice
	lat   latWindow
	// knownBlocks is the block count learned from hellos, for
	// CoverageFloor before any plan is bound.
	knownBlocks atomic.Int64
	closed      atomic.Bool
}

// NewClient builds a client over the configured peers.
func NewClient(opt ClientOptions) *Client {
	if opt.DialTimeout <= 0 {
		opt.DialTimeout = defaultDialTimeout
	}
	if opt.CallTimeout <= 0 {
		opt.CallTimeout = defaultCallTimeout
	}
	if opt.MinAttemptTimeout <= 0 {
		opt.MinAttemptTimeout = defaultMinAttempt
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = defaultMaxAttempts
	}
	if opt.Backoff.Min <= 0 {
		opt.Backoff.Min = defaultBackoffMin
	}
	if opt.Backoff.Max <= 0 {
		opt.Backoff.Max = defaultBackoffMax
	}
	opt.Backoff.Full = true // AWS-style full jitter for RPC storms
	if opt.BreakerThreshold <= 0 {
		opt.BreakerThreshold = defaultBreakThreshold
	}
	if opt.BreakerCooldown <= 0 {
		opt.BreakerCooldown = defaultBreakCooldown
	}
	if opt.MaxIdleConns <= 0 {
		opt.MaxIdleConns = 2
	}
	if opt.BlockSize <= 0 {
		opt.BlockSize = shard.DefaultBlockSize
	}
	if opt.Dial == nil {
		opt.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if opt.Logger == nil {
		opt.Logger = obs.DiscardLogger()
	}
	c := &Client{opt: opt}
	for _, p := range opt.Peers {
		c.peers = append(c.peers, &peer{
			addr: p.Addr,
			spec: p.Spec,
			breaker: retry.NewBreaker(retry.BreakerOptions{
				Threshold: opt.BreakerThreshold,
				Cooldown:  opt.BreakerCooldown,
			}),
		})
	}
	return c
}

// Peers reports the configured peer count.
func (c *Client) Peers() int { return len(c.peers) }

// Close drops all pooled connections. In-flight attempts finish on their
// own deadlines.
func (c *Client) Close() {
	c.closed.Store(true)
	for _, p := range c.peers {
		p.mu.Lock()
		for _, pc := range p.idle {
			pc.conn.Close()
		}
		p.idle = nil
		p.mu.Unlock()
	}
}

// --- peer state ---

type peer struct {
	addr    string
	spec    BlockSpec
	breaker *retry.Breaker

	mu   sync.Mutex
	idle []*pconn

	hello atomic.Pointer[HelloInfo] // cached, cleared on transport error
	// caps is the capability set negotiated in the last hello; cleared
	// with the hello cache so a restarted peer renegotiates from scratch.
	caps  atomic.Uint32
	calls atomic.Int64

	errMu   sync.Mutex
	lastErr string
}

func (p *peer) noteErr(err error) {
	p.errMu.Lock()
	p.lastErr = err.Error()
	p.errMu.Unlock()
}

func (p *peer) lastError() string {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.lastErr
}

// pconn is one pooled connection with its per-connection reqID sequence.
type pconn struct {
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	nextID uint64
}

func (c *Client) getConn(p *peer, timeout time.Duration) (*pconn, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		pc := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return pc, nil
	}
	p.mu.Unlock()
	if timeout > c.opt.DialTimeout {
		timeout = c.opt.DialTimeout
	}
	conn, err := c.opt.Dial(p.addr, timeout)
	if err != nil {
		return nil, err
	}
	return &pconn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), nextID: 1}, nil
}

func (c *Client) putConn(p *peer, pc *pconn) {
	pc.conn.SetDeadline(time.Time{})
	p.mu.Lock()
	if !c.closed.Load() && len(p.idle) < c.opt.MaxIdleConns {
		p.idle = append(p.idle, pc)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	pc.conn.Close()
}

// --- single attempt ---

type attemptResult struct {
	payload []byte
	err     error
	peer    *peer
}

// frameOverhead is the fixed per-frame wire cost beyond the payload:
// length prefix (4) + type (1) + reqID (8) + CRC (4). Used for the
// per-peer byte counters, which measure what actually crossed the wire.
const frameOverhead = 17

func (c *Client) noteBytes(p *peer, dir string, n int) {
	if m := c.opt.Metrics; m != nil {
		m.PeerBytes.With(p.addr, dir).Add(int64(frameOverhead + n))
	}
}

// attempt performs one request/response exchange against p within
// timeout. The deadline rides on the socket, so a black-holed peer cannot
// hold the attempt past its slice.
func (c *Client) attempt(p *peer, mt byte, payload []byte, wantType byte, timeout time.Duration) ([]byte, error) {
	pc, err := c.getConn(p, timeout)
	if err != nil {
		return nil, err
	}
	reqID := pc.nextID
	pc.nextID++
	pc.conn.SetDeadline(time.Now().Add(timeout))
	if err := writeFrame(pc.w, mt, reqID, payload); err != nil {
		pc.conn.Close()
		return nil, err
	}
	c.noteBytes(p, "sent", len(payload))
	if err := pc.w.Flush(); err != nil {
		pc.conn.Close()
		return nil, err
	}
	for {
		fr, err := readFrame(pc.r)
		if err != nil {
			pc.conn.Close()
			return nil, err
		}
		c.noteBytes(p, "recv", len(fr.payload))
		if fr.reqID < reqID {
			continue // duplicate of an older response: drop the frame
		}
		if fr.reqID > reqID {
			pc.conn.Close()
			return nil, fmt.Errorf("shardrpc: response for request %d, awaiting %d", fr.reqID, reqID)
		}
		switch fr.msgType {
		case wantType:
			c.putConn(p, pc)
			return fr.payload, nil
		case msgErr:
			err := decodeErr(fr.payload)
			c.putConn(p, pc)
			return nil, err
		default:
			pc.conn.Close()
			return nil, fmt.Errorf("shardrpc: unexpected response type %d", fr.msgType)
		}
	}
}

// attemptAsync runs attempt in the background and settles its bookkeeping
// (breaker, metrics, latency window) itself — so an abandoned hedge or a
// caller that gave up on the context still updates peer health correctly.
// The telemetry header is appended here, per attempt, because capability
// is a per-peer fact: the same call may hit a telemetry-negotiated peer
// on one attempt and a legacy peer on the failover.
func (c *Client) attemptAsync(p *peer, op string, mt byte, payload []byte, wantType byte, timeout time.Duration, tel *Telemetry) <-chan attemptResult {
	if tel != nil {
		// The tail decision needs the peer's negotiated capabilities; on a
		// cold peer force the hello now (helloPeer itself passes tel=nil,
		// so this cannot recurse). Best-effort: if the hello fails, the
		// attempt below fails the same way.
		if p.hello.Load() == nil {
			c.helloPeer(p)
		}
		if p.caps.Load()&capTelemetry != 0 {
			payload = appendTelemetry(payload, tel)
		}
	}
	ch := make(chan attemptResult, 1)
	go func() {
		start := time.Now()
		out, err := c.attempt(p, mt, payload, wantType, timeout)
		c.settle(p, op, err, time.Since(start), tel)
		ch <- attemptResult{payload: out, err: err, peer: p}
	}()
	return ch
}

func (c *Client) settle(p *peer, op string, err error, elapsed time.Duration, tel *Telemetry) {
	p.calls.Add(1)
	m := c.opt.Metrics
	before := p.breaker.State()
	if m != nil {
		m.Seconds.With(op).Observe(elapsed.Seconds())
		traceID := ""
		if tel != nil {
			traceID = tel.TraceID
		}
		m.PeerSeconds.With(p.addr).ObserveExemplar(elapsed.Seconds(), traceID)
	}
	var re *RemoteError
	switch {
	case err == nil:
		p.breaker.Success()
		c.lat.observe(elapsed)
		if m != nil {
			m.Calls.With(op, "ok").Inc()
			m.PeerCalls.With(p.addr, op, "ok").Inc()
		}
	case errors.As(err, &re):
		// The peer answered: it is alive, whatever it said. Misrouted or
		// stale peers are a config problem, not a liveness one — opening
		// the breaker would just hide the evidence.
		p.breaker.Success()
		p.noteErr(err)
		if m != nil {
			m.Calls.With(op, "remote_error").Inc()
			m.PeerCalls.With(p.addr, op, "remote_error").Inc()
		}
	default:
		if opened := p.breaker.Failure(); opened {
			if m != nil {
				m.BreakerOpens.Inc()
			}
			c.opt.Logger.Warn("shardrpc: peer breaker opened", "peer", p.addr, "err", err)
		}
		p.noteErr(err)
		p.hello.Store(nil) // the process may come back with different data
		p.caps.Store(0)    // ...and different capabilities: renegotiate
		if m != nil {
			m.Calls.With(op, "network_error").Inc()
			m.PeerCalls.With(p.addr, op, "network_error").Inc()
		}
	}
	if m != nil {
		if after := p.breaker.State(); after != before {
			m.BreakerTransitions.With(p.addr, after.String()).Inc()
		}
	}
}

// --- call: retry, failover, hedging, budget ---

// replicasFor lists the peers serving block (block < 0: every peer — used
// for Verify, which any replica of the full graph can answer).
func (c *Client) replicasFor(block int) []*peer {
	out := make([]*peer, 0, len(c.peers))
	for _, p := range c.peers {
		if block < 0 || p.spec.Covers(block) {
			out = append(out, p)
		}
	}
	return out
}

// terminal reports errors that retrying cannot fix anywhere: the request
// itself is wrong.
func terminal(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == ErrCodeBadRequest
}

// PeerFailure is the typed failure of an exhausted call: which block and
// which peer addresses were attempted before the call gave up. The
// coordinator unwraps it to attribute coverage loss (and the degraded
// metric) to the peers that actually failed.
type PeerFailure struct {
	Block int
	Peers []string // unique, in first-attempt order
	Err   error
}

func (e *PeerFailure) Error() string {
	return fmt.Sprintf("shardrpc: block %d unavailable after retries against %v: %v", e.Block, e.Peers, e.Err)
}

func (e *PeerFailure) Unwrap() error { return e.Err }

// FailedPeers returns the attempted peer addresses — the method the
// coordinator matches via errors.As to attribute coverage loss without a
// type dependency on this package.
func (e *PeerFailure) FailedPeers() []string { return e.Peers }

// CallLog counts shard RPC attempts by peer address for one query. The
// server installs one in the query context; the client records every
// attempt (including fired hedges) into it; the query log persists the
// snapshot. All methods are nil-safe, so the client records
// unconditionally.
type CallLog struct {
	mu       sync.Mutex
	attempts map[string]int64
}

// NewCallLog returns an empty per-query attempt log.
func NewCallLog() *CallLog { return &CallLog{} }

// Record counts one attempt against addr.
func (cl *CallLog) Record(addr string) {
	if cl == nil {
		return
	}
	cl.mu.Lock()
	if cl.attempts == nil {
		cl.attempts = make(map[string]int64)
	}
	cl.attempts[addr]++
	cl.mu.Unlock()
}

// Snapshot returns the per-peer attempt counts (nil when empty or on a
// nil log).
func (cl *CallLog) Snapshot() map[string]int64 {
	if cl == nil {
		return nil
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if len(cl.attempts) == 0 {
		return nil
	}
	out := make(map[string]int64, len(cl.attempts))
	for k, v := range cl.attempts {
		out[k] = v
	}
	return out
}

type callLogCtxKey struct{}

// ContextWithCallLog installs a per-query attempt log into the context.
func ContextWithCallLog(ctx context.Context, cl *CallLog) context.Context {
	if cl == nil {
		return ctx
	}
	return context.WithValue(ctx, callLogCtxKey{}, cl)
}

// CallLogFromContext returns the context's attempt log, or nil (a valid
// no-op receiver).
func CallLogFromContext(ctx context.Context) *CallLog {
	if ctx == nil {
		return nil
	}
	cl, _ := ctx.Value(callLogCtxKey{}).(*CallLog)
	return cl
}

// callMeta reports how a successful call was served: the answering peer
// and how many attempts (first try included) the call burned — span
// attributes for the stitched trace.
type callMeta struct {
	peer     string
	attempts int
	hedged   bool
}

// call runs one idempotent exchange against block's replicas until it
// succeeds, the budget runs out, or every attempt is spent. The caller's
// remaining context budget is carved evenly across the attempts still
// available, floored at MinAttemptTimeout — so one black-holed replica
// cannot eat the whole deadline that failover needed.
func (c *Client) call(ctx context.Context, op string, block int, mt byte, payload []byte, wantType byte, tel *Telemetry) ([]byte, callMeta, error) {
	meta := callMeta{}
	replicas := c.replicasFor(block)
	if len(replicas) == 0 {
		return nil, meta, fmt.Errorf("shardrpc: no peer serves block %d", block)
	}
	maxAttempts := c.opt.MaxAttempts
	if n := 2 * len(replicas); maxAttempts < n {
		maxAttempts = n
	}
	// The call budget is the earlier of the context deadline and the
	// per-call cap — so one dead block costs the coordinator at most
	// CallTimeout per round, leaving deadline headroom to settle what
	// survived and return a degraded (but in-time) answer.
	budgetEnd := time.Now().Add(c.opt.CallTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(budgetEnd) {
		budgetEnd = d
	}
	bo := retry.New(c.opt.Backoff)
	start := int(c.rr.Add(1))
	cl := CallLogFromContext(ctx)
	var lastErr error
	var tried []string
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, meta, err
		}
		remaining := time.Until(budgetEnd)
		if remaining <= 0 {
			break
		}
		var p *peer
		for i := 0; i < len(replicas); i++ {
			cand := replicas[(start+attempt+i)%len(replicas)]
			if cand.breaker.Allow() {
				p = cand
				break
			}
		}
		if p == nil {
			lastErr = fmt.Errorf("shardrpc: all %d replicas of block %d have open breakers", len(replicas), block)
			for _, r := range replicas {
				tried = appendPeerOnce(tried, r.addr)
			}
			break
		}
		if attempt > 0 && c.opt.Metrics != nil {
			c.opt.Metrics.Retries.Inc()
		}
		cl.Record(p.addr)
		tried = appendPeerOnce(tried, p.addr)
		slice := attemptSlice(remaining, maxAttempts-attempt, c.opt.MinAttemptTimeout)
		// The attempt span exists so /debug/active's current path names the
		// peer a blocked query is waiting on ("…>rpc:expand>peer:<addr>").
		attemptSpan := obs.SpanFromContext(ctx).StartChild("peer:" + p.addr)
		res := c.oneAttempt(ctx, p, replicas, op, mt, payload, wantType, slice, attempt == 0, tel, cl)
		attemptSpan.End()
		if res.err == nil {
			meta.peer = res.peer.addr
			meta.attempts = attempt + 1
			meta.hedged = res.peer != p
			return res.payload, meta, nil
		}
		if res.peer != nil {
			tried = appendPeerOnce(tried, res.peer.addr)
		}
		if ctx.Err() != nil {
			return nil, meta, ctx.Err()
		}
		if terminal(res.err) {
			return nil, meta, res.err
		}
		lastErr = res.err
		// Backoff before the next attempt — full jitter, skipped when the
		// sleep would outlive the budget anyway.
		if attempt+1 < maxAttempts {
			d := bo.Delay(attempt)
			if d >= time.Until(budgetEnd) {
				continue // next loop iteration will see remaining <= 0 or try a last cheap attempt
			}
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, meta, ctx.Err()
			case <-t.C:
			}
		}
	}
	if lastErr == nil {
		lastErr = ctx.Err()
		if lastErr == nil {
			lastErr = fmt.Errorf("shardrpc: call budget exhausted")
		}
	}
	return nil, meta, &PeerFailure{Block: block, Peers: tried, Err: lastErr}
}

func appendPeerOnce(peers []string, addr string) []string {
	for _, a := range peers {
		if a == addr {
			return peers
		}
	}
	return append(peers, addr)
}

// attemptSlice carves the per-attempt deadline from the remaining budget.
func attemptSlice(remaining time.Duration, attemptsLeft int, floor time.Duration) time.Duration {
	if attemptsLeft < 1 {
		attemptsLeft = 1
	}
	slice := remaining / time.Duration(attemptsLeft)
	if slice < floor {
		slice = floor
	}
	if slice > remaining {
		slice = remaining
	}
	return slice
}

// oneAttempt runs a single attempt, optionally hedged: when the primary
// is slower than the p99-derived delay, a second replica gets the same
// pure request and the first answer wins. The loser's goroutine settles
// its own bookkeeping whenever it finishes.
func (c *Client) oneAttempt(ctx context.Context, p *peer, replicas []*peer, op string, mt byte, payload []byte, wantType byte, timeout time.Duration, allowHedge bool, tel *Telemetry, cl *CallLog) attemptResult {
	primary := c.attemptAsync(p, op, mt, payload, wantType, timeout, tel)
	var hedge *peer
	if allowHedge && c.opt.Hedge {
		for _, cand := range replicas {
			if cand != p && cand.breaker.Allow() {
				hedge = cand
				break
			}
		}
	}
	if hedge == nil {
		select {
		case res := <-primary:
			return res
		case <-ctx.Done():
			return attemptResult{err: ctx.Err()}
		}
	}
	timer := time.NewTimer(c.hedgeDelay())
	defer timer.Stop()
	select {
	case res := <-primary:
		return res
	case <-ctx.Done():
		return attemptResult{err: ctx.Err()}
	case <-timer.C:
	}
	cl.Record(hedge.addr)
	second := c.attemptAsync(hedge, op, mt, payload, wantType, timeout, tel)
	var firstErr attemptResult
	for i := 0; i < 2; i++ {
		var res attemptResult
		select {
		case res = <-primary:
		case res = <-second:
		case <-ctx.Done():
			return attemptResult{err: ctx.Err()}
		}
		if res.err == nil {
			if m := c.opt.Metrics; m != nil {
				if res.peer == hedge {
					m.Hedges.With("won").Inc()
				} else {
					m.Hedges.With("lost").Inc()
				}
			}
			return res
		}
		if i == 0 {
			firstErr = res
		}
	}
	return firstErr
}

func (c *Client) hedgeDelay() time.Duration {
	if c.opt.HedgeDelay > 0 {
		return c.opt.HedgeDelay
	}
	d := c.lat.p99()
	if d == 0 {
		return defaultHedgeDelay
	}
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	if d > maxHedgeDelay {
		d = maxHedgeDelay
	}
	return d
}

// --- latency window (hedge delay source) ---

type latWindow struct {
	mu  sync.Mutex
	buf [latWindowSize]time.Duration
	n   int // filled
	i   int // next slot
}

func (l *latWindow) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.i] = d
	l.i = (l.i + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

func (l *latWindow) p99() time.Duration {
	l.mu.Lock()
	n := l.n
	samples := make([]time.Duration, n)
	copy(samples, l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	idx := n * 99 / 100
	if idx >= n {
		idx = n - 1
	}
	return samples[idx]
}

// --- hello / plan binding ---

// helloPeer returns the peer's advertisement, cached until a transport
// error suggests the process behind the address may have changed.
func (c *Client) helloPeer(p *peer) (HelloInfo, error) {
	if info := p.hello.Load(); info != nil {
		return *info, nil
	}
	res := <-c.attemptAsync(p, "hello", msgHello, encodeHello(localCaps), msgHelloOK, c.opt.DialTimeout, nil)
	if res.err != nil {
		return HelloInfo{}, res.err
	}
	info, caps, err := decodeHelloOKCaps(res.payload)
	if err != nil {
		return HelloInfo{}, err
	}
	// Store caps before hello: readers treat a cached hello as "negotiated",
	// so the capability set must already be visible when they see it.
	p.caps.Store(caps)
	p.hello.Store(&info)
	c.knownBlocks.Store(int64(info.Blocks))
	return info, nil
}

// ServesPlan reports whether this fleet can serve the plan: at least one
// reachable peer advertises the same digest, block count, and block size.
// When no peer is reachable at all it reports true — optimistically, so a
// transient full outage degrades queries (with coverage annotations)
// instead of silently reverting to a mode the operator didn't configure;
// the per-request digest check keeps optimism sound.
func (c *Client) ServesPlan(plan *shard.Plan) bool {
	digest := plan.Graph().Digest()
	nb := plan.NumBlocks()
	reachable, matched := 0, 0
	for _, p := range c.peers {
		info, err := c.helloPeer(p)
		if err != nil {
			continue
		}
		reachable++
		if info.Digest == digest && info.Blocks == nb && info.BlockSize == c.opt.BlockSize {
			matched++
		}
	}
	if reachable == 0 {
		return true
	}
	return matched > 0
}

// For binds the client to a plan, yielding the shard.ShardServer the
// coordinator dispatches rounds through.
func (c *Client) For(plan *shard.Plan) shard.ShardServer {
	c.knownBlocks.Store(int64(plan.NumBlocks()))
	return &bound{c: c, digest: plan.Graph().Digest(), nb: plan.NumBlocks()}
}

type bound struct {
	c      *Client
	digest uint64
	nb     int
}

func (b *bound) Expand(ctx context.Context, req *shard.ExpandRequest) (*shard.ExpandResponse, error) {
	tel := b.c.telemetryFor(ctx)
	rpcSpan := obs.SpanFromContext(ctx).StartChild("rpc:expand")
	if rpcSpan != nil {
		ctx = obs.ContextWithSpan(ctx, rpcSpan)
	}
	payload, meta, err := b.c.call(ctx, "expand", req.Block, msgExpand, encodeExpand(b.digest, req), msgExpandOK, tel)
	if err != nil {
		rpcSpan.SetAttr("error", err.Error()).End()
		return nil, err
	}
	resp, summary, derr := decodeExpandOKFull(payload)
	b.finishRPC(ctx, rpcSpan, req.Block, meta, summary)
	if derr != nil {
		return nil, derr
	}
	return resp, nil
}

func (b *bound) Verify(ctx context.Context, req *shard.VerifyRequest) (*shard.VerifyResponse, error) {
	tel := b.c.telemetryFor(ctx)
	rpcSpan := obs.SpanFromContext(ctx).StartChild("rpc:verify")
	if rpcSpan != nil {
		ctx = obs.ContextWithSpan(ctx, rpcSpan)
	}
	payload, meta, err := b.c.call(ctx, "verify", -1, msgVerify, encodeVerify(b.digest, req), msgVerifyOK, tel)
	if err != nil {
		rpcSpan.SetAttr("error", err.Error()).End()
		return nil, err
	}
	resp, summary, derr := decodeVerifyOKFull(payload)
	b.finishRPC(ctx, rpcSpan, -1, meta, summary)
	if derr != nil {
		return nil, derr
	}
	return resp, nil
}

// finishRPC closes the client-side RPC span with routing attributes and,
// when the peer shipped a telemetry summary back, grafts the remote span
// tree under it and folds the remote ledger into the query's ledger. A
// malformed summary is dropped silently — stitching is best-effort and
// must never affect the answer.
func (b *bound) finishRPC(ctx context.Context, rpcSpan *obs.Span, block int, meta callMeta, summary []byte) {
	if rpcSpan != nil {
		rpcSpan.SetAttr("peer", meta.peer)
		if block >= 0 {
			rpcSpan.SetAttr("block", block)
		}
		if meta.attempts > 1 {
			rpcSpan.SetAttr("attempts", meta.attempts)
		}
		if meta.hedged {
			rpcSpan.SetAttr("hedged", true)
		}
	}
	if len(summary) > 0 {
		var sum RemoteSummary
		if err := json.Unmarshal(summary, &sum); err == nil {
			if rpcSpan != nil && sum.Span != nil {
				rpcSpan.AttachRemote(*sum.Span)
			}
			obs.LedgerFromContext(ctx).MergeRemote(sum.Ledger)
		}
	}
	rpcSpan.End()
}

// telemetryFor decides, per query, whether this call carries a telemetry
// header: there must be a span in the context (no trace, nothing to
// stitch into), sampling must be enabled, and the trace ID must hash
// under the sampling probability — deterministically, so every RPC of one
// query makes the same decision and a trace is either fully stitched or
// not at all.
func (c *Client) telemetryFor(ctx context.Context) *Telemetry {
	if c.opt.TelemetrySample <= 0 {
		return nil
	}
	sp := obs.SpanFromContext(ctx)
	if sp == nil {
		return nil
	}
	tid := sp.Trace().ID()
	if tid == "" {
		return nil
	}
	if c.opt.TelemetrySample < 1 && !sampleHash(tid, c.opt.TelemetrySample) {
		return nil
	}
	return &Telemetry{TraceID: tid, ParentSpan: sp.Name(), Sampled: true}
}

// sampleHash maps id through FNV-1a onto [0,1) and compares against the
// sampling probability.
func sampleHash(id string, p float64) bool {
	h := fnv.New64a()
	h.Write([]byte(id))
	return float64(h.Sum64())/float64(^uint64(0)) < p
}

// --- health / readiness ---

// CoverageFloor estimates the fraction of blocks that at least one
// non-open-breaker peer serves — the coordinator is ready iff this is
// above zero (a partial fleet degrades; an empty one cannot answer at
// all).
func (c *Client) CoverageFloor() float64 {
	healthy := c.healthyPeers()
	if len(healthy) == 0 {
		return 0
	}
	for _, p := range healthy {
		if p.spec.All {
			return 1
		}
	}
	nb := int(c.knownBlocks.Load())
	if nb <= 0 {
		// Block count unknown (no plan bound, no hello yet): some peer is
		// healthy, so the only readiness-relevant signal — zero — is off.
		return 1
	}
	covered := 0
	for b := 0; b < nb; b++ {
		for _, p := range healthy {
			if p.spec.Covers(b) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(nb)
}

func (c *Client) healthyPeers() []*peer {
	var out []*peer
	for _, p := range c.peers {
		// Probeable, not State(): an open breaker whose cooldown elapsed
		// will admit the next query's probe, so that peer still counts
		// toward the floor — otherwise an idle coordinator would report
		// not-ready forever after an outage no query has re-tested.
		if p.breaker.Probeable() {
			out = append(out, p)
		}
	}
	return out
}

// PeerFleetInfo is one peer's entry in a fleet snapshot: its health, the
// identity it advertised in hello (digest/blocks/block size), the
// capabilities it negotiated, and — when it speaks capStats — the live
// resource/counter snapshot its Stats RPC returned.
type PeerFleetInfo struct {
	PeerHealth
	Digest    string     `json:"digest,omitempty"`
	NumBlocks int        `json:"num_blocks,omitempty"`
	BlockSize int        `json:"block_size,omitempty"`
	Telemetry bool       `json:"telemetry"`
	Stats     *StatsInfo `json:"stats,omitempty"`
	StatsErr  string     `json:"stats_error,omitempty"`
}

// FleetSnapshot polls every configured peer — hello (cached when fresh)
// plus a Stats RPC where the peer negotiated capStats — and returns one
// entry per peer, in configuration order. Peers are polled concurrently;
// an unreachable peer contributes its health row with the error, never a
// failure of the snapshot. Backs GET /debug/fleet.
func (c *Client) FleetSnapshot(ctx context.Context) []PeerFleetInfo {
	health := c.Health()
	out := make([]PeerFleetInfo, len(c.peers))
	var wg sync.WaitGroup
	for i, p := range c.peers {
		out[i] = PeerFleetInfo{PeerHealth: health[i]}
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			info, err := c.helloPeer(p)
			if err != nil {
				out[i].StatsErr = err.Error()
				return
			}
			out[i].Digest = fmt.Sprintf("%016x", info.Digest)
			out[i].NumBlocks = info.Blocks
			out[i].BlockSize = info.BlockSize
			caps := p.caps.Load()
			out[i].Telemetry = caps&capTelemetry != 0
			if caps&capStats == 0 {
				// Pre-capability peer: msgStats would kill its connection
				// (old readFrame treats unknown types as protocol errors),
				// so don't even ask.
				return
			}
			res := <-c.attemptAsync(p, "stats", msgStats, nil, msgStatsOK, c.opt.DialTimeout, nil)
			if res.err != nil {
				out[i].StatsErr = res.err.Error()
				return
			}
			st, err := decodeStatsOK(res.payload)
			if err != nil {
				out[i].StatsErr = err.Error()
				return
			}
			out[i].Stats = &st
		}(i, p)
	}
	wg.Wait()
	return out
}

// Health snapshots every peer for /stats.
func (c *Client) Health() []PeerHealth {
	out := make([]PeerHealth, 0, len(c.peers))
	for _, p := range c.peers {
		state := "healthy"
		switch p.breaker.State() {
		case retry.Open:
			state = "open-breaker"
		case retry.HalfOpen:
			state = "degraded"
		default:
			if p.breaker.Fails() > 0 {
				state = "degraded"
			}
		}
		out = append(out, PeerHealth{
			Addr:    p.addr,
			Blocks:  p.spec.String(),
			State:   state,
			Fails:   p.breaker.Fails(),
			Calls:   p.calls.Load(),
			LastErr: p.lastError(),
		})
	}
	return out
}

package shardrpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bigindex/internal/obs"
	"bigindex/internal/retry"
	"bigindex/internal/shard"
)

// Client resilience defaults.
const (
	defaultDialTimeout    = 500 * time.Millisecond
	defaultCallTimeout    = 2 * time.Second
	defaultMinAttempt     = 25 * time.Millisecond
	defaultMaxAttempts    = 4
	defaultBackoffMin     = 10 * time.Millisecond
	defaultBackoffMax     = 250 * time.Millisecond
	defaultBreakThreshold = 3
	defaultBreakCooldown  = time.Second
	defaultHedgeDelay     = 50 * time.Millisecond // until p99 samples exist
	minHedgeDelay         = 2 * time.Millisecond
	maxHedgeDelay         = 200 * time.Millisecond
	latWindowSize         = 128
)

// Metrics is the client-side instrument set.
type Metrics struct {
	Calls        *obs.CounterVec   // op, outcome: ok|remote_error|network_error
	Retries      *obs.Counter      // attempts beyond the first
	Hedges       *obs.CounterVec   // outcome: won|lost
	BreakerOpens *obs.Counter      // closed/half-open -> open transitions
	Seconds      *obs.HistogramVec // op
}

// NewMetrics registers the bigindex_shardrpc_* metrics on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Calls: reg.CounterVec("bigindex_shardrpc_calls_total",
			"Shard RPC attempts by operation and outcome.", "op", "outcome"),
		Retries: reg.Counter("bigindex_shardrpc_retries_total",
			"Shard RPC attempts beyond the first for a call."),
		Hedges: reg.CounterVec("bigindex_shardrpc_hedges_total",
			"Hedged shard RPC attempts by outcome.", "outcome"),
		BreakerOpens: reg.Counter("bigindex_shardrpc_breaker_opens_total",
			"Per-peer circuit breaker open transitions."),
		Seconds: reg.HistogramVec("bigindex_shardrpc_call_seconds",
			"Shard RPC attempt latency by operation.", nil, "op"),
	}
}

// ClientOptions configures a Client. Zero values take the defaults above.
type ClientOptions struct {
	Peers []Peer
	// BlockSize is the partition size the coordinator plans with; peers
	// advertising a different one are treated as not serving the plan.
	BlockSize int

	DialTimeout time.Duration
	// CallTimeout bounds a whole call (all attempts) when the context
	// carries no deadline of its own.
	CallTimeout time.Duration
	// MinAttemptTimeout floors the per-attempt slice carved from the
	// remaining budget, so many retries cannot starve each attempt below
	// a useful deadline.
	MinAttemptTimeout time.Duration
	// MaxAttempts caps attempts per call (first try included). Raised to
	// 2×len(peers) for the block when smaller, so every replica gets a
	// second chance before the call degrades.
	MaxAttempts int

	Backoff          retry.BackoffOptions
	BreakerThreshold int64
	BreakerCooldown  time.Duration

	// Hedge fires a second attempt at a different replica when the first
	// is slower than the observed p99 — tail latency insurance, sound
	// because requests are pure.
	Hedge bool
	// HedgeDelay overrides the p99-derived hedge delay (0: derive).
	HedgeDelay time.Duration

	// MaxIdleConns caps pooled connections per peer.
	MaxIdleConns int

	// Dial replaces net.DialTimeout — the fault-injection hook.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)

	Metrics *Metrics
	Logger  *slog.Logger
}

// PeerHealth is one peer's snapshot for /stats and /readyz.
type PeerHealth struct {
	Addr    string `json:"addr"`
	Blocks  string `json:"blocks"`
	State   string `json:"state"` // healthy | degraded | open-breaker
	Fails   int64  `json:"fails"`
	Calls   int64  `json:"calls"`
	LastErr string `json:"last_error,omitempty"`
}

// Client fans shard rounds out to replica peers, surviving slow, dead,
// lying, and half-open networks: per-attempt deadlines carved from the
// caller's budget, retries with full-jitter backoff, failover across
// replicas, optional hedging, and a circuit breaker per peer.
type Client struct {
	opt   ClientOptions
	peers []*peer
	rr    atomic.Uint64 // round-robin cursor, decorrelates replica choice
	lat   latWindow
	// knownBlocks is the block count learned from hellos, for
	// CoverageFloor before any plan is bound.
	knownBlocks atomic.Int64
	closed      atomic.Bool
}

// NewClient builds a client over the configured peers.
func NewClient(opt ClientOptions) *Client {
	if opt.DialTimeout <= 0 {
		opt.DialTimeout = defaultDialTimeout
	}
	if opt.CallTimeout <= 0 {
		opt.CallTimeout = defaultCallTimeout
	}
	if opt.MinAttemptTimeout <= 0 {
		opt.MinAttemptTimeout = defaultMinAttempt
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = defaultMaxAttempts
	}
	if opt.Backoff.Min <= 0 {
		opt.Backoff.Min = defaultBackoffMin
	}
	if opt.Backoff.Max <= 0 {
		opt.Backoff.Max = defaultBackoffMax
	}
	opt.Backoff.Full = true // AWS-style full jitter for RPC storms
	if opt.BreakerThreshold <= 0 {
		opt.BreakerThreshold = defaultBreakThreshold
	}
	if opt.BreakerCooldown <= 0 {
		opt.BreakerCooldown = defaultBreakCooldown
	}
	if opt.MaxIdleConns <= 0 {
		opt.MaxIdleConns = 2
	}
	if opt.BlockSize <= 0 {
		opt.BlockSize = shard.DefaultBlockSize
	}
	if opt.Dial == nil {
		opt.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if opt.Logger == nil {
		opt.Logger = obs.DiscardLogger()
	}
	c := &Client{opt: opt}
	for _, p := range opt.Peers {
		c.peers = append(c.peers, &peer{
			addr: p.Addr,
			spec: p.Spec,
			breaker: retry.NewBreaker(retry.BreakerOptions{
				Threshold: opt.BreakerThreshold,
				Cooldown:  opt.BreakerCooldown,
			}),
		})
	}
	return c
}

// Peers reports the configured peer count.
func (c *Client) Peers() int { return len(c.peers) }

// Close drops all pooled connections. In-flight attempts finish on their
// own deadlines.
func (c *Client) Close() {
	c.closed.Store(true)
	for _, p := range c.peers {
		p.mu.Lock()
		for _, pc := range p.idle {
			pc.conn.Close()
		}
		p.idle = nil
		p.mu.Unlock()
	}
}

// --- peer state ---

type peer struct {
	addr    string
	spec    BlockSpec
	breaker *retry.Breaker

	mu   sync.Mutex
	idle []*pconn

	hello atomic.Pointer[HelloInfo] // cached, cleared on transport error
	calls atomic.Int64

	errMu   sync.Mutex
	lastErr string
}

func (p *peer) noteErr(err error) {
	p.errMu.Lock()
	p.lastErr = err.Error()
	p.errMu.Unlock()
}

func (p *peer) lastError() string {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.lastErr
}

// pconn is one pooled connection with its per-connection reqID sequence.
type pconn struct {
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	nextID uint64
}

func (c *Client) getConn(p *peer, timeout time.Duration) (*pconn, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		pc := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return pc, nil
	}
	p.mu.Unlock()
	if timeout > c.opt.DialTimeout {
		timeout = c.opt.DialTimeout
	}
	conn, err := c.opt.Dial(p.addr, timeout)
	if err != nil {
		return nil, err
	}
	return &pconn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), nextID: 1}, nil
}

func (c *Client) putConn(p *peer, pc *pconn) {
	pc.conn.SetDeadline(time.Time{})
	p.mu.Lock()
	if !c.closed.Load() && len(p.idle) < c.opt.MaxIdleConns {
		p.idle = append(p.idle, pc)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	pc.conn.Close()
}

// --- single attempt ---

type attemptResult struct {
	payload []byte
	err     error
	peer    *peer
}

// attempt performs one request/response exchange against p within
// timeout. The deadline rides on the socket, so a black-holed peer cannot
// hold the attempt past its slice.
func (c *Client) attempt(p *peer, mt byte, payload []byte, wantType byte, timeout time.Duration) ([]byte, error) {
	pc, err := c.getConn(p, timeout)
	if err != nil {
		return nil, err
	}
	reqID := pc.nextID
	pc.nextID++
	pc.conn.SetDeadline(time.Now().Add(timeout))
	if err := writeFrame(pc.w, mt, reqID, payload); err != nil {
		pc.conn.Close()
		return nil, err
	}
	if err := pc.w.Flush(); err != nil {
		pc.conn.Close()
		return nil, err
	}
	for {
		fr, err := readFrame(pc.r)
		if err != nil {
			pc.conn.Close()
			return nil, err
		}
		if fr.reqID < reqID {
			continue // duplicate of an older response: drop the frame
		}
		if fr.reqID > reqID {
			pc.conn.Close()
			return nil, fmt.Errorf("shardrpc: response for request %d, awaiting %d", fr.reqID, reqID)
		}
		switch fr.msgType {
		case wantType:
			c.putConn(p, pc)
			return fr.payload, nil
		case msgErr:
			err := decodeErr(fr.payload)
			c.putConn(p, pc)
			return nil, err
		default:
			pc.conn.Close()
			return nil, fmt.Errorf("shardrpc: unexpected response type %d", fr.msgType)
		}
	}
}

// attemptAsync runs attempt in the background and settles its bookkeeping
// (breaker, metrics, latency window) itself — so an abandoned hedge or a
// caller that gave up on the context still updates peer health correctly.
func (c *Client) attemptAsync(p *peer, op string, mt byte, payload []byte, wantType byte, timeout time.Duration) <-chan attemptResult {
	ch := make(chan attemptResult, 1)
	go func() {
		start := time.Now()
		out, err := c.attempt(p, mt, payload, wantType, timeout)
		c.settle(p, op, err, time.Since(start))
		ch <- attemptResult{payload: out, err: err, peer: p}
	}()
	return ch
}

func (c *Client) settle(p *peer, op string, err error, elapsed time.Duration) {
	p.calls.Add(1)
	m := c.opt.Metrics
	if m != nil {
		m.Seconds.With(op).Observe(elapsed.Seconds())
	}
	var re *RemoteError
	switch {
	case err == nil:
		p.breaker.Success()
		c.lat.observe(elapsed)
		if m != nil {
			m.Calls.With(op, "ok").Inc()
		}
	case errors.As(err, &re):
		// The peer answered: it is alive, whatever it said. Misrouted or
		// stale peers are a config problem, not a liveness one — opening
		// the breaker would just hide the evidence.
		p.breaker.Success()
		p.noteErr(err)
		if m != nil {
			m.Calls.With(op, "remote_error").Inc()
		}
	default:
		if opened := p.breaker.Failure(); opened {
			if m != nil {
				m.BreakerOpens.Inc()
			}
			c.opt.Logger.Warn("shardrpc: peer breaker opened", "peer", p.addr, "err", err)
		}
		p.noteErr(err)
		p.hello.Store(nil) // the process may come back with different data
		if m != nil {
			m.Calls.With(op, "network_error").Inc()
		}
	}
}

// --- call: retry, failover, hedging, budget ---

// replicasFor lists the peers serving block (block < 0: every peer — used
// for Verify, which any replica of the full graph can answer).
func (c *Client) replicasFor(block int) []*peer {
	out := make([]*peer, 0, len(c.peers))
	for _, p := range c.peers {
		if block < 0 || p.spec.Covers(block) {
			out = append(out, p)
		}
	}
	return out
}

// terminal reports errors that retrying cannot fix anywhere: the request
// itself is wrong.
func terminal(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == ErrCodeBadRequest
}

// call runs one idempotent exchange against block's replicas until it
// succeeds, the budget runs out, or every attempt is spent. The caller's
// remaining context budget is carved evenly across the attempts still
// available, floored at MinAttemptTimeout — so one black-holed replica
// cannot eat the whole deadline that failover needed.
func (c *Client) call(ctx context.Context, op string, block int, mt byte, payload []byte, wantType byte) ([]byte, error) {
	replicas := c.replicasFor(block)
	if len(replicas) == 0 {
		return nil, fmt.Errorf("shardrpc: no peer serves block %d", block)
	}
	maxAttempts := c.opt.MaxAttempts
	if n := 2 * len(replicas); maxAttempts < n {
		maxAttempts = n
	}
	// The call budget is the earlier of the context deadline and the
	// per-call cap — so one dead block costs the coordinator at most
	// CallTimeout per round, leaving deadline headroom to settle what
	// survived and return a degraded (but in-time) answer.
	budgetEnd := time.Now().Add(c.opt.CallTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(budgetEnd) {
		budgetEnd = d
	}
	bo := retry.New(c.opt.Backoff)
	start := int(c.rr.Add(1))
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		remaining := time.Until(budgetEnd)
		if remaining <= 0 {
			break
		}
		var p *peer
		for i := 0; i < len(replicas); i++ {
			cand := replicas[(start+attempt+i)%len(replicas)]
			if cand.breaker.Allow() {
				p = cand
				break
			}
		}
		if p == nil {
			lastErr = fmt.Errorf("shardrpc: all %d replicas of block %d have open breakers", len(replicas), block)
			break
		}
		if attempt > 0 && c.opt.Metrics != nil {
			c.opt.Metrics.Retries.Inc()
		}
		slice := attemptSlice(remaining, maxAttempts-attempt, c.opt.MinAttemptTimeout)
		res := c.oneAttempt(ctx, p, replicas, op, mt, payload, wantType, slice, attempt == 0)
		if res.err == nil {
			return res.payload, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if terminal(res.err) {
			return nil, res.err
		}
		lastErr = res.err
		// Backoff before the next attempt — full jitter, skipped when the
		// sleep would outlive the budget anyway.
		if attempt+1 < maxAttempts {
			d := bo.Delay(attempt)
			if d >= time.Until(budgetEnd) {
				continue // next loop iteration will see remaining <= 0 or try a last cheap attempt
			}
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
	}
	if lastErr == nil {
		lastErr = ctx.Err()
		if lastErr == nil {
			lastErr = fmt.Errorf("shardrpc: call budget exhausted")
		}
	}
	return nil, fmt.Errorf("shardrpc: block %d unavailable after retries: %w", block, lastErr)
}

// attemptSlice carves the per-attempt deadline from the remaining budget.
func attemptSlice(remaining time.Duration, attemptsLeft int, floor time.Duration) time.Duration {
	if attemptsLeft < 1 {
		attemptsLeft = 1
	}
	slice := remaining / time.Duration(attemptsLeft)
	if slice < floor {
		slice = floor
	}
	if slice > remaining {
		slice = remaining
	}
	return slice
}

// oneAttempt runs a single attempt, optionally hedged: when the primary
// is slower than the p99-derived delay, a second replica gets the same
// pure request and the first answer wins. The loser's goroutine settles
// its own bookkeeping whenever it finishes.
func (c *Client) oneAttempt(ctx context.Context, p *peer, replicas []*peer, op string, mt byte, payload []byte, wantType byte, timeout time.Duration, allowHedge bool) attemptResult {
	primary := c.attemptAsync(p, op, mt, payload, wantType, timeout)
	var hedge *peer
	if allowHedge && c.opt.Hedge {
		for _, cand := range replicas {
			if cand != p && cand.breaker.Allow() {
				hedge = cand
				break
			}
		}
	}
	if hedge == nil {
		select {
		case res := <-primary:
			return res
		case <-ctx.Done():
			return attemptResult{err: ctx.Err()}
		}
	}
	timer := time.NewTimer(c.hedgeDelay())
	defer timer.Stop()
	select {
	case res := <-primary:
		return res
	case <-ctx.Done():
		return attemptResult{err: ctx.Err()}
	case <-timer.C:
	}
	second := c.attemptAsync(hedge, op, mt, payload, wantType, timeout)
	var firstErr attemptResult
	for i := 0; i < 2; i++ {
		var res attemptResult
		select {
		case res = <-primary:
		case res = <-second:
		case <-ctx.Done():
			return attemptResult{err: ctx.Err()}
		}
		if res.err == nil {
			if m := c.opt.Metrics; m != nil {
				if res.peer == hedge {
					m.Hedges.With("won").Inc()
				} else {
					m.Hedges.With("lost").Inc()
				}
			}
			return res
		}
		if i == 0 {
			firstErr = res
		}
	}
	return firstErr
}

func (c *Client) hedgeDelay() time.Duration {
	if c.opt.HedgeDelay > 0 {
		return c.opt.HedgeDelay
	}
	d := c.lat.p99()
	if d == 0 {
		return defaultHedgeDelay
	}
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	if d > maxHedgeDelay {
		d = maxHedgeDelay
	}
	return d
}

// --- latency window (hedge delay source) ---

type latWindow struct {
	mu  sync.Mutex
	buf [latWindowSize]time.Duration
	n   int // filled
	i   int // next slot
}

func (l *latWindow) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.i] = d
	l.i = (l.i + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

func (l *latWindow) p99() time.Duration {
	l.mu.Lock()
	n := l.n
	samples := make([]time.Duration, n)
	copy(samples, l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	idx := n * 99 / 100
	if idx >= n {
		idx = n - 1
	}
	return samples[idx]
}

// --- hello / plan binding ---

// helloPeer returns the peer's advertisement, cached until a transport
// error suggests the process behind the address may have changed.
func (c *Client) helloPeer(p *peer) (HelloInfo, error) {
	if info := p.hello.Load(); info != nil {
		return *info, nil
	}
	res := <-c.attemptAsync(p, "hello", msgHello, nil, msgHelloOK, c.opt.DialTimeout)
	if res.err != nil {
		return HelloInfo{}, res.err
	}
	info, err := decodeHelloOK(res.payload)
	if err != nil {
		return HelloInfo{}, err
	}
	p.hello.Store(&info)
	c.knownBlocks.Store(int64(info.Blocks))
	return info, nil
}

// ServesPlan reports whether this fleet can serve the plan: at least one
// reachable peer advertises the same digest, block count, and block size.
// When no peer is reachable at all it reports true — optimistically, so a
// transient full outage degrades queries (with coverage annotations)
// instead of silently reverting to a mode the operator didn't configure;
// the per-request digest check keeps optimism sound.
func (c *Client) ServesPlan(plan *shard.Plan) bool {
	digest := plan.Graph().Digest()
	nb := plan.NumBlocks()
	reachable, matched := 0, 0
	for _, p := range c.peers {
		info, err := c.helloPeer(p)
		if err != nil {
			continue
		}
		reachable++
		if info.Digest == digest && info.Blocks == nb && info.BlockSize == c.opt.BlockSize {
			matched++
		}
	}
	if reachable == 0 {
		return true
	}
	return matched > 0
}

// For binds the client to a plan, yielding the shard.ShardServer the
// coordinator dispatches rounds through.
func (c *Client) For(plan *shard.Plan) shard.ShardServer {
	c.knownBlocks.Store(int64(plan.NumBlocks()))
	return &bound{c: c, digest: plan.Graph().Digest(), nb: plan.NumBlocks()}
}

type bound struct {
	c      *Client
	digest uint64
	nb     int
}

func (b *bound) Expand(ctx context.Context, req *shard.ExpandRequest) (*shard.ExpandResponse, error) {
	payload, err := b.c.call(ctx, "expand", req.Block, msgExpand, encodeExpand(b.digest, req), msgExpandOK)
	if err != nil {
		return nil, err
	}
	return decodeExpandOK(payload)
}

func (b *bound) Verify(ctx context.Context, req *shard.VerifyRequest) (*shard.VerifyResponse, error) {
	payload, err := b.c.call(ctx, "verify", -1, msgVerify, encodeVerify(b.digest, req), msgVerifyOK)
	if err != nil {
		return nil, err
	}
	return decodeVerifyOK(payload)
}

// --- health / readiness ---

// CoverageFloor estimates the fraction of blocks that at least one
// non-open-breaker peer serves — the coordinator is ready iff this is
// above zero (a partial fleet degrades; an empty one cannot answer at
// all).
func (c *Client) CoverageFloor() float64 {
	healthy := c.healthyPeers()
	if len(healthy) == 0 {
		return 0
	}
	for _, p := range healthy {
		if p.spec.All {
			return 1
		}
	}
	nb := int(c.knownBlocks.Load())
	if nb <= 0 {
		// Block count unknown (no plan bound, no hello yet): some peer is
		// healthy, so the only readiness-relevant signal — zero — is off.
		return 1
	}
	covered := 0
	for b := 0; b < nb; b++ {
		for _, p := range healthy {
			if p.spec.Covers(b) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(nb)
}

func (c *Client) healthyPeers() []*peer {
	var out []*peer
	for _, p := range c.peers {
		// Probeable, not State(): an open breaker whose cooldown elapsed
		// will admit the next query's probe, so that peer still counts
		// toward the floor — otherwise an idle coordinator would report
		// not-ready forever after an outage no query has re-tested.
		if p.breaker.Probeable() {
			out = append(out, p)
		}
	}
	return out
}

// Health snapshots every peer for /stats.
func (c *Client) Health() []PeerHealth {
	out := make([]PeerHealth, 0, len(c.peers))
	for _, p := range c.peers {
		state := "healthy"
		switch p.breaker.State() {
		case retry.Open:
			state = "open-breaker"
		case retry.HalfOpen:
			state = "degraded"
		default:
			if p.breaker.Fails() > 0 {
				state = "degraded"
			}
		}
		out = append(out, PeerHealth{
			Addr:    p.addr,
			Blocks:  p.spec.String(),
			State:   state,
			Fails:   p.breaker.Fails(),
			Calls:   p.calls.Load(),
			LastErr: p.lastError(),
		})
	}
	return out
}

package shardrpc

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/retry"
	"bigindex/internal/shard"
)

// testGraph builds a deterministic random graph (mirrors the shard
// package's generator shape).
func testGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(nil)
	labels := make([]graph.Label, 5)
	for i := range labels {
		labels[i] = b.Dict().Intern(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		b.AddVertexLabel(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < 3*n; i++ {
		b.AddEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
	}
	return b.Build()
}

func testPlan(t *testing.T, g *graph.Graph, blockSize int) *shard.Plan {
	t.Helper()
	return shard.NewPlanner(shard.Options{BlockSize: blockSize}).PlanGraph(g)
}

func startServer(t *testing.T, plan *shard.Plan, opt ServerOptions) (*Server, string) {
	t.Helper()
	srv := NewServer(plan, opt)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func mustPeers(t *testing.T, spec string) []Peer {
	t.Helper()
	peers, err := ParsePeers(spec)
	if err != nil {
		t.Fatal(err)
	}
	return peers
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("h1:9001; h2:9002=0%2 ; h3:9003=1-3,7")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 {
		t.Fatalf("got %d peers", len(peers))
	}
	if !peers[0].Spec.All || peers[0].Addr != "h1:9001" {
		t.Fatalf("peer 0: %+v", peers[0])
	}
	if peers[1].Spec.Mod != 2 || peers[1].Spec.Rem != 0 || !peers[1].Spec.Covers(4) || peers[1].Spec.Covers(3) {
		t.Fatalf("peer 1: %+v", peers[1])
	}
	if got := peers[2].Spec.String(); got != "1-3,7" {
		t.Fatalf("peer 2 spec renders %q", got)
	}
	if peers[2].Spec.Covers(4) || !peers[2].Spec.Covers(7) || !peers[2].Spec.Covers(2) {
		t.Fatalf("peer 2 coverage wrong: %+v", peers[2])
	}

	// File form with comments.
	path := filepath.Join(t.TempDir(), "peers.conf")
	os.WriteFile(path, []byte("# fleet\nh1:9001 = all\nh2:9002=1%2 # odd blocks\n"), 0o644)
	peers, err = ParsePeers("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || !peers[0].Spec.All || peers[1].Spec.Mod != 2 {
		t.Fatalf("file form parsed %+v", peers)
	}

	for _, bad := range []string{"", "h=5%2", "h=2-1", "h=x", "=all", "@/does/not/exist"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestAttemptSlice(t *testing.T) {
	if got := attemptSlice(400*time.Millisecond, 4, 25*time.Millisecond); got != 100*time.Millisecond {
		t.Fatalf("even carve = %v", got)
	}
	if got := attemptSlice(40*time.Millisecond, 4, 25*time.Millisecond); got != 25*time.Millisecond {
		t.Fatalf("floor = %v", got)
	}
	if got := attemptSlice(10*time.Millisecond, 4, 25*time.Millisecond); got != 10*time.Millisecond {
		t.Fatalf("floor must not exceed remaining: %v", got)
	}
}

// TestClientMatchesLocal runs real Expand/Verify calls over TCP and
// checks the responses equal the in-process shard.Local's, for a
// replicated pair and a modulo block split.
func TestClientMatchesLocal(t *testing.T) {
	g := testGraph(1, 80)
	plan := testPlan(t, g, 16)
	nb := plan.NumBlocks()
	local := shard.NewLocal(plan)

	evens, odds := []int{}, []int{}
	for b := 0; b < nb; b++ {
		if b%2 == 0 {
			evens = append(evens, b)
		} else {
			odds = append(odds, b)
		}
	}
	_, addrA := startServer(t, plan, ServerOptions{Blocks: evens})
	_, addrB := startServer(t, plan, ServerOptions{Blocks: odds})

	c := NewClient(ClientOptions{Peers: mustPeers(t, fmt.Sprintf("%s=0%%2;%s=1%%2", addrA, addrB))})
	defer c.Close()
	if !c.ServesPlan(plan) {
		t.Fatal("split fleet should serve the plan")
	}
	srv := c.For(plan)

	ctx := context.Background()
	labels := g.DistinctLabels()
	for b := 0; b < nb; b++ {
		req := &shard.ExpandRequest{Kw: 0, Block: b, Level: 0, Frontier: seedFrontier(plan, labels[0], b)}
		want, err := local.Expand(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := srv.Expand(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("block %d: got %+v want %+v", b, got, want)
		}
	}
	vreq := &shard.VerifyRequest{Labels: labels[:2], DMax: 3, Roots: []graph.V{0, 1, 2, 3, 4}}
	want, err := local.Verify(ctx, vreq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.Verify(ctx, vreq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("verify: got %+v want %+v", got, want)
	}
}

// seedFrontier gives a deterministic nonempty-ish frontier for block b.
func seedFrontier(plan *shard.Plan, l graph.Label, b int) []graph.V {
	var out []graph.V
	part := plan.Partitioning()
	g := plan.Graph()
	for v := 0; v < g.NumVertices(); v++ {
		if part.BlockOf[v] == b && g.Label(graph.V(v)) == l {
			out = append(out, graph.V(v))
		}
	}
	return out
}

// TestClientFailoverToReplica points the client at one dead address and
// one live server: calls must succeed via failover, and the dead peer's
// breaker must accumulate failures.
func TestClientFailoverToReplica(t *testing.T) {
	g := testGraph(2, 60)
	plan := testPlan(t, g, 16)
	_, live := startServer(t, plan, ServerOptions{})

	// A listener we close immediately: connection refused, fast.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	reg := obs.NewRegistry()
	c := NewClient(ClientOptions{
		Peers:   mustPeers(t, deadAddr+";"+live),
		Metrics: NewMetrics(reg),
	})
	defer c.Close()
	srv := c.For(plan)
	for i := 0; i < 6; i++ {
		req := &shard.ExpandRequest{Kw: 0, Block: 0, Level: 0, Frontier: seedFrontier(plan, g.DistinctLabels()[0], 0)}
		if _, err := srv.Expand(context.Background(), req); err != nil {
			t.Fatalf("call %d failed despite a live replica: %v", i, err)
		}
	}
	var deadHealth PeerHealth
	for _, h := range c.Health() {
		if h.Addr == deadAddr {
			deadHealth = h
		}
	}
	if deadHealth.Addr == "" || deadHealth.Fails == 0 {
		t.Fatalf("dead peer health not recorded: %+v", c.Health())
	}
	if c.opt.Metrics.Retries.Value() == 0 {
		t.Fatal("failover attempts should count as retries")
	}
}

// TestClientBreakerOpensAndRecovers starts with the network down,
// watches the breaker open (and CoverageFloor hit zero), then brings it
// up and watches the half-open probe close the breaker again.
func TestClientBreakerOpensAndRecovers(t *testing.T) {
	g := testGraph(3, 60)
	plan := testPlan(t, g, 16)
	_, addr := startServer(t, plan, ServerOptions{})

	deadFlag := atomic.Bool{}
	deadFlag.Store(true)
	c := NewClient(ClientOptions{
		Peers:            mustPeers(t, addr),
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Millisecond,
		CallTimeout:      300 * time.Millisecond,
		Dial: func(a string, timeout time.Duration) (net.Conn, error) {
			if deadFlag.Load() {
				return nil, fmt.Errorf("injected: network down")
			}
			return net.DialTimeout("tcp", a, timeout)
		},
	})
	defer c.Close()
	bnd := c.For(plan)
	req := &shard.ExpandRequest{Kw: 0, Block: 0, Level: 0, Frontier: seedFrontier(plan, g.DistinctLabels()[0], 0)}

	for i := 0; i < 4 && c.peers[0].breaker.State() != retry.Open; i++ {
		if _, err := bnd.Expand(context.Background(), req); err == nil {
			t.Fatal("dead network call should fail")
		}
	}
	if got := c.peers[0].breaker.State(); got != retry.Open {
		t.Fatalf("breaker state = %v, want open", got)
	}
	if c.CoverageFloor() != 0 {
		t.Fatalf("floor with whole fleet down = %v, want 0", c.CoverageFloor())
	}
	if h := c.Health()[0]; h.State != "open-breaker" || h.LastErr == "" {
		t.Fatalf("health = %+v", h)
	}

	deadFlag.Store(false)
	time.Sleep(35 * time.Millisecond) // past the cooldown
	if _, err := bnd.Expand(context.Background(), req); err != nil {
		t.Fatalf("half-open probe should succeed: %v", err)
	}
	if got := c.peers[0].breaker.State(); got != retry.Closed {
		t.Fatalf("breaker after recovery = %v, want closed", got)
	}
	if h := c.Health()[0]; h.State != "healthy" {
		t.Fatalf("health after recovery = %+v", h)
	}
	if c.CoverageFloor() != 1 {
		t.Fatalf("healthy floor = %v", c.CoverageFloor())
	}
}

// TestClientNoHangPastDeadline points the client at a black hole — a
// listener that accepts and never answers — and checks the call respects
// the context deadline instead of hanging.
func TestClientNoHangPastDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { // swallow requests forever
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()

	g := testGraph(4, 40)
	plan := testPlan(t, g, 16)
	c := NewClient(ClientOptions{Peers: mustPeers(t, ln.Addr().String())})
	defer c.Close()
	bnd := c.For(plan)

	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = bnd.Expand(ctx, &shard.ExpandRequest{Kw: 0, Block: 0, Frontier: []graph.V{0}})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("black-holed call should fail")
	}
	if elapsed > 1200*time.Millisecond {
		t.Fatalf("call held for %v, far past the 400ms budget", elapsed)
	}
}

// TestServesPlan: matching fleet yes, mismatched digest no, fully
// unreachable fleet optimistic-yes.
func TestServesPlan(t *testing.T) {
	g := testGraph(5, 60)
	plan := testPlan(t, g, 16)
	_, addr := startServer(t, plan, ServerOptions{})

	c := NewClient(ClientOptions{Peers: mustPeers(t, addr)})
	defer c.Close()
	if !c.ServesPlan(plan) {
		t.Fatal("matching fleet rejected")
	}

	other := testPlan(t, testGraph(6, 61), 16)
	c2 := NewClient(ClientOptions{Peers: mustPeers(t, addr)})
	defer c2.Close()
	if c2.ServesPlan(other) {
		t.Fatal("digest mismatch accepted")
	}

	dead, _ := net.Listen("tcp", "127.0.0.1:0")
	deadAddr := dead.Addr().String()
	dead.Close()
	c3 := NewClient(ClientOptions{Peers: mustPeers(t, deadAddr), DialTimeout: 50 * time.Millisecond})
	defer c3.Close()
	if !c3.ServesPlan(plan) {
		t.Fatal("unreachable fleet must be optimistic (degrade at query time instead)")
	}
}

// TestStaleReplicaFailsOver: one replica serves yesterday's graph, the
// other today's. Calls planned against today's digest must come from the
// fresh replica — the stale one answers errStale and is skipped, never
// mixed in.
func TestStaleReplicaFailsOver(t *testing.T) {
	gOld := testGraph(7, 60)
	gNew := testGraph(8, 60)
	planOld := testPlan(t, gOld, 16)
	planNew := testPlan(t, gNew, 16)
	_, stale := startServer(t, planOld, ServerOptions{})
	_, fresh := startServer(t, planNew, ServerOptions{})

	c := NewClient(ClientOptions{Peers: mustPeers(t, stale+";"+fresh)})
	defer c.Close()
	bnd := c.For(planNew)
	local := shard.NewLocal(planNew)
	for i := 0; i < 6; i++ { // rotation guarantees some calls start at the stale peer
		req := &shard.ExpandRequest{Kw: 0, Block: 0, Level: 0, Frontier: seedFrontier(planNew, gNew.DistinctLabels()[0], 0)}
		got, err := bnd.Expand(context.Background(), req)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		want, _ := local.Expand(context.Background(), req)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("call %d answered by the wrong graph version", i)
		}
	}
}

// TestHedgingWinsOnSlowReplica wires one deliberately slow replica and
// one fast one with hedging on: hedged attempts must fire and win.
func TestHedgingWinsOnSlowReplica(t *testing.T) {
	g := testGraph(9, 60)
	plan := testPlan(t, g, 16)

	slowSrv := NewServer(plan, ServerOptions{})
	slowLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	slowSrv.ServeListener(&slowListener{Listener: slowLn, delay: 150 * time.Millisecond})
	defer slowSrv.Close()
	_, fast := startServer(t, plan, ServerOptions{})

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	c := NewClient(ClientOptions{
		Peers:      mustPeers(t, slowLn.Addr().String()+";"+fast),
		Hedge:      true,
		HedgeDelay: 10 * time.Millisecond,
		Metrics:    m,
	})
	defer c.Close()
	bnd := c.For(plan)
	req := &shard.ExpandRequest{Kw: 0, Block: 0, Level: 0, Frontier: seedFrontier(plan, g.DistinctLabels()[0], 0)}
	local := shard.NewLocal(plan)
	want, _ := local.Expand(context.Background(), req)
	for i := 0; i < 6; i++ {
		got, err := bnd.Expand(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("hedged call %d wrong answer", i)
		}
	}
	if m.Hedges.With("won").Value() == 0 {
		t.Fatal("no hedge ever won despite a 150ms-slow primary")
	}
}

// slowListener delays responses by sleeping before the handshake's
// first server write (wrapping each accepted conn with a write delay).
type slowListener struct {
	net.Listener
	delay time.Duration
}

func (l *slowListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &slowConn{Conn: conn, delay: l.delay}, nil
}

type slowConn struct {
	net.Conn
	delay time.Duration
}

func (c *slowConn) Write(p []byte) (int, error) {
	time.Sleep(c.delay)
	return c.Conn.Write(p)
}

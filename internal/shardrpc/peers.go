package shardrpc

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// BlockSpec describes which plan blocks a peer serves. Three forms:
//
//	all       every block (the replicated default)
//	0-3,7     an explicit id set (ranges and singletons)
//	r%m       the modulo form: blocks b with b % m == r — robust to an
//	          unknown block count, so two processes can split any plan
//	          with "0%2" and "1%2" without agreeing on numbers first
type BlockSpec struct {
	All      bool
	IDs      []int // sorted, unique; used when !All and Mod == 0
	Mod, Rem int   // modulo form when Mod > 0
}

// Covers reports whether the spec includes block b.
func (s BlockSpec) Covers(b int) bool {
	if s.All {
		return true
	}
	if s.Mod > 0 {
		return b%s.Mod == s.Rem
	}
	i := sort.SearchInts(s.IDs, b)
	return i < len(s.IDs) && s.IDs[i] == b
}

// String renders the spec back in its config form.
func (s BlockSpec) String() string {
	if s.All {
		return "all"
	}
	if s.Mod > 0 {
		return fmt.Sprintf("%d%%%d", s.Rem, s.Mod)
	}
	var parts []string
	for i := 0; i < len(s.IDs); {
		j := i
		for j+1 < len(s.IDs) && s.IDs[j+1] == s.IDs[j]+1 {
			j++
		}
		if j > i {
			parts = append(parts, fmt.Sprintf("%d-%d", s.IDs[i], s.IDs[j]))
		} else {
			parts = append(parts, strconv.Itoa(s.IDs[i]))
		}
		i = j + 1
	}
	return strings.Join(parts, ",")
}

func parseBlockSpec(s string) (BlockSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return BlockSpec{All: true}, nil
	}
	if i := strings.IndexByte(s, '%'); i >= 0 {
		r, err1 := strconv.Atoi(strings.TrimSpace(s[:i]))
		m, err2 := strconv.Atoi(strings.TrimSpace(s[i+1:]))
		if err1 != nil || err2 != nil || m < 1 || r < 0 || r >= m {
			return BlockSpec{}, fmt.Errorf("bad modulo block spec %q (want r%%m with 0 <= r < m)", s)
		}
		return BlockSpec{Mod: m, Rem: r}, nil
	}
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lo, hi := part, part
		if i := strings.IndexByte(part, '-'); i > 0 {
			lo, hi = part[:i], part[i+1:]
		}
		a, err1 := strconv.Atoi(lo)
		b, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || a < 0 || b < a {
			return BlockSpec{}, fmt.Errorf("bad block range %q", part)
		}
		if b-a > 1<<20 {
			return BlockSpec{}, fmt.Errorf("block range %q too large", part)
		}
		for id := a; id <= b; id++ {
			seen[id] = true
		}
	}
	if len(seen) == 0 {
		return BlockSpec{}, fmt.Errorf("empty block spec")
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return BlockSpec{IDs: ids}, nil
}

// Peer is one configured shard server.
type Peer struct {
	Addr string
	Spec BlockSpec
}

// ParsePeers parses the -shard-peers membership config: entries separated
// by ';' (or newlines), each "addr" (all blocks) or "addr=blockspec".
// A leading "@path" reads the same syntax from a file, one entry per
// line, '#' comments allowed — the static-file form of membership.
func ParsePeers(spec string) ([]Peer, error) {
	spec = strings.TrimSpace(spec)
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("shard peers file: %w", err)
		}
		spec = string(data)
	}
	var peers []Peer
	for _, line := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == '\n' }) {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		entry := Peer{Addr: line, Spec: BlockSpec{All: true}}
		if i := strings.LastIndexByte(line, '='); i >= 0 {
			entry.Addr = strings.TrimSpace(line[:i])
			bs, err := parseBlockSpec(line[i+1:])
			if err != nil {
				return nil, err
			}
			entry.Spec = bs
		}
		if entry.Addr == "" {
			return nil, fmt.Errorf("shard peer entry %q has no address", line)
		}
		peers = append(peers, entry)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("no shard peers in %q", spec)
	}
	return peers, nil
}

// ParseBlocks resolves a block-spec string ("all", "1-3,7", "0%2") against
// a plan's block count into the explicit list a Server should answer; nil
// means all blocks (bigindexd's -shard-blocks flag).
func ParseBlocks(spec string, n int) ([]int, error) {
	bs, err := parseBlockSpec(spec)
	if err != nil {
		return nil, err
	}
	if bs.All {
		return nil, nil
	}
	var out []int
	for b := 0; b < n; b++ {
		if bs.Covers(b) {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("block spec %q matches none of the plan's %d blocks", spec, n)
	}
	return out, nil
}

// Package shardrpc promotes shard.ShardServer to a network boundary: a
// Server wraps the in-process shard.Local behind a length-prefixed TCP
// protocol, and a Client implements shard.ShardServer over a fleet of
// replica peers with retries, failover, hedging, and per-peer circuit
// breakers. The protocol inherits the shard package's statelessness —
// every request is a pure function of the immutable plan — which is what
// makes every resilience trick sound: a retried, duplicated, or hedged
// request returns the same answer from any replica (DESIGN.md §9.5).
//
// Wire format (all integers little-endian):
//
//	frame  = u32 bodyLen | body | u32 crc32(body)   (IEEE CRC over body)
//	body   = u8 msgType | u64 reqID | payload
//
// reqIDs increase per connection; a response frame whose reqID is below
// the one awaited is a duplicate (injected or retransmitted) and is
// discarded, one above is a desync and kills the connection. The CRC
// rejects corrupted frames before any payload is interpreted. Expand and
// Verify requests carry the graph digest the caller planned against; a
// peer serving different data answers errStale rather than a wrong
// answer, so replicas can never silently mix graph versions.
package shardrpc

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"bigindex/internal/graph"
	"bigindex/internal/search"
	"bigindex/internal/shard"
)

// Message types. msgStats/msgStatsOK postdate the first protocol
// release: a pre-capability peer's readFrame rejects them as unknown
// types and kills the connection, so the client only ever sends msgStats
// to a peer that advertised capStats in the hello exchange.
const (
	msgHello     = 1
	msgHelloOK   = 2
	msgExpand    = 3
	msgExpandOK  = 4
	msgVerify    = 5
	msgVerifyOK  = 6
	msgErr       = 7
	msgStats     = 8
	msgStatsOK   = 9
	msgTypeCount = 10

	// legacyMsgTypeCount is where the pre-capability protocol ended;
	// ServerOptions.LegacyProto emulates that vintage for compat tests.
	legacyMsgTypeCount = 8
)

// Capability bits, negotiated in the hello exchange. The client sends its
// capability set as the (previously empty) hello payload; the server
// answers with the intersection appended to the HelloOK payload. Both
// sides treat a missing set as zero, so a new client interoperates with a
// pre-capability server and vice versa: optional protocol features only
// engage when both ends advertised them.
const (
	// capTelemetry: Expand/Verify requests may carry a telemetry tail
	// (trace ID, parent span, sampling decision) and responses to such
	// requests carry a remote span/ledger summary tail.
	capTelemetry = 1 << 0
	// capStats: the peer answers the msgStats resource/health probe.
	capStats = 1 << 1

	// localCaps is everything this build supports.
	localCaps = capTelemetry | capStats
)

// Remote error codes.
const (
	// ErrCodeStale: the peer serves a different graph digest than the
	// request was planned against.
	ErrCodeStale = 1
	// ErrCodeBadRequest: malformed or out-of-range request (not retryable).
	ErrCodeBadRequest = 2
	// ErrCodeInternal: the peer failed to serve a well-formed request.
	ErrCodeInternal = 3
)

// maxFrame caps a frame body — far above any realistic round, small
// enough that a corrupted length prefix cannot make a reader allocate
// gigabytes.
const maxFrame = 64 << 20

// RemoteError is a structured failure returned by a peer.
type RemoteError struct {
	Code int
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("shardrpc: remote error %d: %s", e.Code, e.Msg)
}

// HelloInfo is what a peer advertises about the data it serves. The
// client matches Digest/Blocks/BlockSize against its plan before routing
// rounds to the peer.
type HelloInfo struct {
	Digest    uint64
	Blocks    int
	BlockSize int
	Vertices  int
}

// frame is one decoded frame.
type frame struct {
	msgType byte
	reqID   uint64
	payload []byte
}

// writeFrame writes one frame to w. body is assembled once so the write
// is a single syscall on an unfragmented path.
func writeFrame(w io.Writer, msgType byte, reqID uint64, payload []byte) error {
	body := make([]byte, 9+len(payload))
	body[0] = msgType
	binary.LittleEndian.PutUint64(body[1:9], reqID)
	copy(body[9:], payload)

	buf := make([]byte, 4+len(body)+4)
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(body)))
	copy(buf[4:], body)
	binary.LittleEndian.PutUint32(buf[4+len(body):], crc32.ChecksumIEEE(body))
	_, err := w.Write(buf)
	return err
}

// readFrame reads and validates one frame. Any violation — oversized
// length, bad CRC, unknown type — is a hard protocol error; the caller
// must close the connection (there is no way to resynchronize a byte
// stream after a damaged length prefix).
func readFrame(r io.Reader) (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 9 || n > maxFrame {
		return frame{}, fmt.Errorf("shardrpc: frame length %d out of range", n)
	}
	body := make([]byte, n+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	sum := binary.LittleEndian.Uint32(body[n:])
	body = body[:n]
	if crc32.ChecksumIEEE(body) != sum {
		return frame{}, fmt.Errorf("shardrpc: frame CRC mismatch")
	}
	if body[0] == 0 || body[0] >= msgTypeCount {
		return frame{}, fmt.Errorf("shardrpc: unknown message type %d", body[0])
	}
	return frame{
		msgType: body[0],
		reqID:   binary.LittleEndian.Uint64(body[1:9]),
		payload: body[9:],
	}, nil
}

// enc is an append-based payload encoder.
type enc struct{ b []byte }

func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) vs(vs []graph.V) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.u32(uint32(v))
	}
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// dec is a bounds-checked payload decoder; the first violation poisons it
// and every later read reports failure.
type dec struct {
	b   []byte
	off int
	bad bool
}

func (d *dec) fail() { d.bad = true }
func (d *dec) u8() byte {
	if d.bad || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}
func (d *dec) u32() uint32 {
	if d.bad || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}
func (d *dec) u64() uint64 {
	if d.bad || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// count reads a length prefix and sanity-bounds it by the remaining
// bytes / elemSize so a hostile count cannot drive a huge allocation.
func (d *dec) count(elemSize int) int {
	n := int(d.u32())
	if d.bad {
		return 0
	}
	if n < 0 || n*elemSize > len(d.b)-d.off {
		d.fail()
		return 0
	}
	return n
}

func (d *dec) vs() []graph.V {
	n := d.count(4)
	if d.bad || n == 0 {
		return nil
	}
	vs := make([]graph.V, n)
	for i := range vs {
		vs[i] = graph.V(d.u32())
	}
	return vs
}

func (d *dec) str() string {
	n := d.count(1)
	if d.bad || n == 0 {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) done() error {
	if d.bad {
		return fmt.Errorf("shardrpc: truncated or malformed payload")
	}
	return nil
}

// --- payload codecs ---

func encodeHelloOK(info HelloInfo) []byte {
	var e enc
	e.u64(info.Digest)
	e.u32(uint32(info.Blocks))
	e.u32(uint32(info.BlockSize))
	e.u64(uint64(info.Vertices))
	return e.b
}

func decodeHelloOK(p []byte) (HelloInfo, error) {
	d := dec{b: p}
	info := HelloInfo{
		Digest:    d.u64(),
		Blocks:    int(d.u32()),
		BlockSize: int(d.u32()),
		Vertices:  int(d.u64()),
	}
	return info, d.done()
}

func encodeExpand(digest uint64, req *shard.ExpandRequest) []byte {
	var e enc
	e.u64(digest)
	e.u32(uint32(req.Kw))
	e.u32(uint32(req.Block))
	e.u32(uint32(req.Level))
	e.vs(req.Frontier)
	return e.b
}

func decodeExpand(p []byte) (digest uint64, req *shard.ExpandRequest, err error) {
	d := dec{b: p}
	digest = d.u64()
	req = &shard.ExpandRequest{
		Kw:    int(d.u32()),
		Block: int(d.u32()),
	}
	req.Level = int32(d.u32())
	req.Frontier = d.vs()
	return digest, req, d.done()
}

func encodeExpandOK(resp *shard.ExpandResponse) []byte {
	var e enc
	e.u32(uint32(resp.Kw))
	e.u32(uint32(resp.Block))
	e.vs(resp.Local)
	e.u32(uint32(len(resp.Outbox)))
	for _, m := range resp.Outbox {
		e.u32(uint32(m.V))
		e.u32(uint32(m.Block))
	}
	e.u32(uint32(resp.Expanded))
	return e.b
}

func decodeExpandOK(p []byte) (*shard.ExpandResponse, error) {
	d := dec{b: p}
	resp := &shard.ExpandResponse{
		Kw:    int(d.u32()),
		Block: int(d.u32()),
		Local: d.vs(),
	}
	n := d.count(8)
	if n > 0 {
		resp.Outbox = make([]shard.PortalMsg, n)
		for i := range resp.Outbox {
			resp.Outbox[i].V = graph.V(d.u32())
			resp.Outbox[i].Block = int32(d.u32())
		}
	}
	resp.Expanded = int(d.u32())
	return resp, d.done()
}

func encodeVerify(digest uint64, req *shard.VerifyRequest) []byte {
	var e enc
	e.u64(digest)
	e.u32(uint32(req.DMax))
	e.u32(uint32(len(req.Labels)))
	for _, l := range req.Labels {
		e.u32(uint32(l))
	}
	e.vs(req.Roots)
	return e.b
}

func decodeVerify(p []byte) (digest uint64, req *shard.VerifyRequest, err error) {
	d := dec{b: p}
	digest = d.u64()
	req = &shard.VerifyRequest{DMax: int(d.u32())}
	n := d.count(4)
	if n > 0 {
		req.Labels = make([]graph.Label, n)
		for i := range req.Labels {
			req.Labels[i] = graph.Label(d.u32())
		}
	}
	req.Roots = d.vs()
	return digest, req, d.done()
}

func encodeVerifyOK(resp *shard.VerifyResponse) []byte {
	var e enc
	e.u32(uint32(resp.Verified))
	e.u32(uint32(len(resp.Matches)))
	for i := range resp.Matches {
		m := &resp.Matches[i]
		e.u32(uint32(m.Root))
		e.u32(uint32(len(m.Dists)))
		for _, dv := range m.Dists {
			e.u32(uint32(dv))
		}
		e.vs(m.Nodes)
	}
	return e.b
}

func decodeVerifyOK(p []byte) (*shard.VerifyResponse, error) {
	d := dec{b: p}
	resp := &shard.VerifyResponse{Verified: int(d.u32())}
	n := d.count(4)
	if n > 0 {
		resp.Matches = make([]search.Match, 0, n)
		for i := 0; i < n && !d.bad; i++ {
			m := search.Match{Root: graph.V(d.u32())}
			nd := d.count(4)
			sum := 0
			if nd > 0 {
				m.Dists = make([]int, nd)
				for j := range m.Dists {
					m.Dists[j] = int(d.u32())
					sum += m.Dists[j]
				}
			}
			// Score is Σdist by construction on both sides: recomputing
			// it here keeps floats off the wire with zero drift (small
			// integer sums are exact in float64).
			m.Score = float64(sum)
			m.Nodes = d.vs()
			resp.Matches = append(resp.Matches, m)
		}
	}
	return resp, d.done()
}

func encodeErr(code int, msg string) []byte {
	var e enc
	e.u8(byte(code))
	e.str(msg)
	return e.b
}

func decodeErr(p []byte) error {
	d := dec{b: p}
	re := &RemoteError{Code: int(d.u8()), Msg: d.str()}
	if err := d.done(); err != nil {
		return err
	}
	return re
}

// --- capability / telemetry tails ---
//
// Optional protocol extensions ride as *tails* appended after a message's
// base payload. Base decoders consume exactly the base fields and ignore
// trailing bytes (dec.done checks well-formedness, not full consumption),
// which is the whole backward-compatibility story: a pre-capability peer
// decodes the base and never notices the tail, and a tail that fails to
// parse is dropped — never an error — so telemetry can degrade but the
// answer path cannot.

// encodeHello renders the client's capability advertisement. A
// pre-capability client sends an empty hello payload, which decodes as
// caps 0.
func encodeHello(caps uint32) []byte {
	var e enc
	e.u32(caps)
	return e.b
}

// decodeHelloCaps reads the capability set from a hello payload; an
// empty or malformed payload is a pre-capability client (caps 0).
func decodeHelloCaps(p []byte) uint32 {
	if len(p) < 4 {
		return 0
	}
	d := dec{b: p}
	return d.u32()
}

// encodeHelloOKCaps is encodeHelloOK with the negotiated capability set
// appended as a tail. Old clients decode the base fields and ignore it.
func encodeHelloOKCaps(info HelloInfo, caps uint32) []byte {
	b := encodeHelloOK(info)
	var e enc
	e.b = b
	e.u32(caps)
	return e.b
}

// decodeHelloOKCaps decodes a HelloOK plus the optional capability tail
// (0 when the server predates capabilities or the tail is malformed).
func decodeHelloOKCaps(p []byte) (HelloInfo, uint32, error) {
	d := dec{b: p}
	info := HelloInfo{
		Digest:    d.u64(),
		Blocks:    int(d.u32()),
		BlockSize: int(d.u32()),
		Vertices:  int(d.u64()),
	}
	if err := d.done(); err != nil {
		return HelloInfo{}, 0, err
	}
	var caps uint32
	if d.off+4 <= len(d.b) {
		caps = d.u32()
	}
	return info, caps, nil
}

// Telemetry is the trace context a request carries over the wire when
// both ends negotiated capTelemetry: enough for the peer to run its own
// sampled span/ledger and for the coordinator to stitch the result back
// under the right trace.
type Telemetry struct {
	TraceID    string
	ParentSpan string
	Sampled    bool
}

// telMagic guards the telemetry tail: trailing bytes that do not start
// with it are not a telemetry header and are ignored wholesale, so a
// future extension (or damage that survived every other check) can never
// be misread as trace context.
const telMagic = 0x54454C31 // "TEL1"

// appendTelemetry appends the telemetry tail to a base request payload.
func appendTelemetry(base []byte, tel *Telemetry) []byte {
	if tel == nil {
		return base
	}
	e := enc{b: base}
	e.u32(telMagic)
	e.str(tel.TraceID)
	e.str(tel.ParentSpan)
	if tel.Sampled {
		e.u8(1)
	} else {
		e.u8(0)
	}
	return e.b
}

// decodeTelemetryTail attempts to read a telemetry tail starting at
// d.off. Any malformation — wrong magic, truncation, oversized strings —
// returns nil without poisoning d: a broken telemetry header silently
// drops telemetry, never the request. The caller's base decode already
// succeeded by the time this runs.
func decodeTelemetryTail(d *dec) *Telemetry {
	if d.bad || d.off+4 > len(d.b) {
		return nil
	}
	t := dec{b: d.b, off: d.off}
	if t.u32() != telMagic {
		return nil
	}
	tel := &Telemetry{TraceID: t.str(), ParentSpan: t.str()}
	tel.Sampled = t.u8() == 1
	if t.bad || tel.TraceID == "" || len(tel.TraceID) > 128 || len(tel.ParentSpan) > 256 {
		return nil
	}
	return tel
}

// decodeExpandFull is decodeExpand plus the optional telemetry tail.
func decodeExpandFull(p []byte) (digest uint64, req *shard.ExpandRequest, tel *Telemetry, err error) {
	d := dec{b: p}
	digest = d.u64()
	req = &shard.ExpandRequest{
		Kw:    int(d.u32()),
		Block: int(d.u32()),
	}
	req.Level = int32(d.u32())
	req.Frontier = d.vs()
	if err := d.done(); err != nil {
		return 0, nil, nil, err
	}
	return digest, req, decodeTelemetryTail(&d), nil
}

// decodeVerifyFull is decodeVerify plus the optional telemetry tail.
func decodeVerifyFull(p []byte) (digest uint64, req *shard.VerifyRequest, tel *Telemetry, err error) {
	d := dec{b: p}
	digest = d.u64()
	req = &shard.VerifyRequest{DMax: int(d.u32())}
	n := d.count(4)
	if n > 0 {
		req.Labels = make([]graph.Label, n)
		for i := range req.Labels {
			req.Labels[i] = graph.Label(d.u32())
		}
	}
	req.Roots = d.vs()
	if err := d.done(); err != nil {
		return 0, nil, nil, err
	}
	return digest, req, decodeTelemetryTail(&d), nil
}

// appendSummary appends a remote span/ledger summary tail (JSON, see
// RemoteSummary) to a response payload. Sent only in reply to a request
// that carried a telemetry tail.
func appendSummary(base []byte, summary []byte) []byte {
	if len(summary) == 0 {
		return base
	}
	e := enc{b: base}
	e.u32(telMagic)
	e.str(string(summary))
	return e.b
}

// decodeSummaryTail reads the optional summary tail at d.off; nil when
// absent or malformed (telemetry drops, answers do not).
func decodeSummaryTail(d *dec) []byte {
	if d.bad || d.off+4 > len(d.b) {
		return nil
	}
	t := dec{b: d.b, off: d.off}
	if t.u32() != telMagic {
		return nil
	}
	s := t.str()
	if t.bad || s == "" {
		return nil
	}
	return []byte(s)
}

// decodeExpandOKFull is decodeExpandOK plus the optional summary tail.
func decodeExpandOKFull(p []byte) (*shard.ExpandResponse, []byte, error) {
	d := dec{b: p}
	resp := &shard.ExpandResponse{
		Kw:    int(d.u32()),
		Block: int(d.u32()),
		Local: d.vs(),
	}
	n := d.count(8)
	if n > 0 {
		resp.Outbox = make([]shard.PortalMsg, n)
		for i := range resp.Outbox {
			resp.Outbox[i].V = graph.V(d.u32())
			resp.Outbox[i].Block = int32(d.u32())
		}
	}
	resp.Expanded = int(d.u32())
	if err := d.done(); err != nil {
		return nil, nil, err
	}
	return resp, decodeSummaryTail(&d), nil
}

// decodeVerifyOKFull is decodeVerifyOK plus the optional summary tail.
func decodeVerifyOKFull(p []byte) (*shard.VerifyResponse, []byte, error) {
	d := dec{b: p}
	resp := &shard.VerifyResponse{Verified: int(d.u32())}
	n := d.count(4)
	if n > 0 {
		resp.Matches = make([]search.Match, 0, n)
		for i := 0; i < n && !d.bad; i++ {
			m := search.Match{Root: graph.V(d.u32())}
			nd := d.count(4)
			sum := 0
			if nd > 0 {
				m.Dists = make([]int, nd)
				for j := range m.Dists {
					m.Dists[j] = int(d.u32())
					sum += m.Dists[j]
				}
			}
			m.Score = float64(sum)
			m.Nodes = d.vs()
			resp.Matches = append(resp.Matches, m)
		}
	}
	if err := d.done(); err != nil {
		return nil, nil, err
	}
	return resp, decodeSummaryTail(&d), nil
}

// --- stats probe ---

// StatsInfo is a shard server's self-report behind the msgStats probe:
// resource gauges and serve counters the coordinator's /debug/fleet
// aggregates across the fleet. Carried as JSON — the probe is a debug
// surface, not a hot path, and JSON lets either side grow fields without
// another wire rev.
type StatsInfo struct {
	Digest       string `json:"digest"`
	Blocks       int    `json:"blocks"`
	BlocksServed int    `json:"blocks_served"`
	Vertices     int    `json:"vertices"`
	UptimeS      int64  `json:"uptime_s"`
	Goroutines   int    `json:"goroutines"`
	HeapBytes    uint64 `json:"heap_bytes"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	Expands      int64  `json:"expands"`
	Verifies     int64  `json:"verifies"`
	Errors       int64  `json:"errors"`
}

func encodeStatsOK(info StatsInfo) []byte {
	blob, err := json.Marshal(info)
	if err != nil {
		blob = []byte("{}")
	}
	var e enc
	e.str(string(blob))
	return e.b
}

func decodeStatsOK(p []byte) (StatsInfo, error) {
	d := dec{b: p}
	blob := d.str()
	if err := d.done(); err != nil {
		return StatsInfo{}, err
	}
	var info StatsInfo
	if err := json.Unmarshal([]byte(blob), &info); err != nil {
		return StatsInfo{}, fmt.Errorf("shardrpc: stats payload: %w", err)
	}
	return info, nil
}

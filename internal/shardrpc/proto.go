// Package shardrpc promotes shard.ShardServer to a network boundary: a
// Server wraps the in-process shard.Local behind a length-prefixed TCP
// protocol, and a Client implements shard.ShardServer over a fleet of
// replica peers with retries, failover, hedging, and per-peer circuit
// breakers. The protocol inherits the shard package's statelessness —
// every request is a pure function of the immutable plan — which is what
// makes every resilience trick sound: a retried, duplicated, or hedged
// request returns the same answer from any replica (DESIGN.md §9.5).
//
// Wire format (all integers little-endian):
//
//	frame  = u32 bodyLen | body | u32 crc32(body)   (IEEE CRC over body)
//	body   = u8 msgType | u64 reqID | payload
//
// reqIDs increase per connection; a response frame whose reqID is below
// the one awaited is a duplicate (injected or retransmitted) and is
// discarded, one above is a desync and kills the connection. The CRC
// rejects corrupted frames before any payload is interpreted. Expand and
// Verify requests carry the graph digest the caller planned against; a
// peer serving different data answers errStale rather than a wrong
// answer, so replicas can never silently mix graph versions.
package shardrpc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"bigindex/internal/graph"
	"bigindex/internal/search"
	"bigindex/internal/shard"
)

// Message types.
const (
	msgHello     = 1
	msgHelloOK   = 2
	msgExpand    = 3
	msgExpandOK  = 4
	msgVerify    = 5
	msgVerifyOK  = 6
	msgErr       = 7
	msgTypeCount = 8
)

// Remote error codes.
const (
	// ErrCodeStale: the peer serves a different graph digest than the
	// request was planned against.
	ErrCodeStale = 1
	// ErrCodeBadRequest: malformed or out-of-range request (not retryable).
	ErrCodeBadRequest = 2
	// ErrCodeInternal: the peer failed to serve a well-formed request.
	ErrCodeInternal = 3
)

// maxFrame caps a frame body — far above any realistic round, small
// enough that a corrupted length prefix cannot make a reader allocate
// gigabytes.
const maxFrame = 64 << 20

// RemoteError is a structured failure returned by a peer.
type RemoteError struct {
	Code int
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("shardrpc: remote error %d: %s", e.Code, e.Msg)
}

// HelloInfo is what a peer advertises about the data it serves. The
// client matches Digest/Blocks/BlockSize against its plan before routing
// rounds to the peer.
type HelloInfo struct {
	Digest    uint64
	Blocks    int
	BlockSize int
	Vertices  int
}

// frame is one decoded frame.
type frame struct {
	msgType byte
	reqID   uint64
	payload []byte
}

// writeFrame writes one frame to w. body is assembled once so the write
// is a single syscall on an unfragmented path.
func writeFrame(w io.Writer, msgType byte, reqID uint64, payload []byte) error {
	body := make([]byte, 9+len(payload))
	body[0] = msgType
	binary.LittleEndian.PutUint64(body[1:9], reqID)
	copy(body[9:], payload)

	buf := make([]byte, 4+len(body)+4)
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(body)))
	copy(buf[4:], body)
	binary.LittleEndian.PutUint32(buf[4+len(body):], crc32.ChecksumIEEE(body))
	_, err := w.Write(buf)
	return err
}

// readFrame reads and validates one frame. Any violation — oversized
// length, bad CRC, unknown type — is a hard protocol error; the caller
// must close the connection (there is no way to resynchronize a byte
// stream after a damaged length prefix).
func readFrame(r io.Reader) (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 9 || n > maxFrame {
		return frame{}, fmt.Errorf("shardrpc: frame length %d out of range", n)
	}
	body := make([]byte, n+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	sum := binary.LittleEndian.Uint32(body[n:])
	body = body[:n]
	if crc32.ChecksumIEEE(body) != sum {
		return frame{}, fmt.Errorf("shardrpc: frame CRC mismatch")
	}
	if body[0] == 0 || body[0] >= msgTypeCount {
		return frame{}, fmt.Errorf("shardrpc: unknown message type %d", body[0])
	}
	return frame{
		msgType: body[0],
		reqID:   binary.LittleEndian.Uint64(body[1:9]),
		payload: body[9:],
	}, nil
}

// enc is an append-based payload encoder.
type enc struct{ b []byte }

func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) vs(vs []graph.V) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.u32(uint32(v))
	}
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// dec is a bounds-checked payload decoder; the first violation poisons it
// and every later read reports failure.
type dec struct {
	b   []byte
	off int
	bad bool
}

func (d *dec) fail() { d.bad = true }
func (d *dec) u8() byte {
	if d.bad || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}
func (d *dec) u32() uint32 {
	if d.bad || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}
func (d *dec) u64() uint64 {
	if d.bad || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// count reads a length prefix and sanity-bounds it by the remaining
// bytes / elemSize so a hostile count cannot drive a huge allocation.
func (d *dec) count(elemSize int) int {
	n := int(d.u32())
	if d.bad {
		return 0
	}
	if n < 0 || n*elemSize > len(d.b)-d.off {
		d.fail()
		return 0
	}
	return n
}

func (d *dec) vs() []graph.V {
	n := d.count(4)
	if d.bad || n == 0 {
		return nil
	}
	vs := make([]graph.V, n)
	for i := range vs {
		vs[i] = graph.V(d.u32())
	}
	return vs
}

func (d *dec) str() string {
	n := d.count(1)
	if d.bad || n == 0 {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) done() error {
	if d.bad {
		return fmt.Errorf("shardrpc: truncated or malformed payload")
	}
	return nil
}

// --- payload codecs ---

func encodeHelloOK(info HelloInfo) []byte {
	var e enc
	e.u64(info.Digest)
	e.u32(uint32(info.Blocks))
	e.u32(uint32(info.BlockSize))
	e.u64(uint64(info.Vertices))
	return e.b
}

func decodeHelloOK(p []byte) (HelloInfo, error) {
	d := dec{b: p}
	info := HelloInfo{
		Digest:    d.u64(),
		Blocks:    int(d.u32()),
		BlockSize: int(d.u32()),
		Vertices:  int(d.u64()),
	}
	return info, d.done()
}

func encodeExpand(digest uint64, req *shard.ExpandRequest) []byte {
	var e enc
	e.u64(digest)
	e.u32(uint32(req.Kw))
	e.u32(uint32(req.Block))
	e.u32(uint32(req.Level))
	e.vs(req.Frontier)
	return e.b
}

func decodeExpand(p []byte) (digest uint64, req *shard.ExpandRequest, err error) {
	d := dec{b: p}
	digest = d.u64()
	req = &shard.ExpandRequest{
		Kw:    int(d.u32()),
		Block: int(d.u32()),
	}
	req.Level = int32(d.u32())
	req.Frontier = d.vs()
	return digest, req, d.done()
}

func encodeExpandOK(resp *shard.ExpandResponse) []byte {
	var e enc
	e.u32(uint32(resp.Kw))
	e.u32(uint32(resp.Block))
	e.vs(resp.Local)
	e.u32(uint32(len(resp.Outbox)))
	for _, m := range resp.Outbox {
		e.u32(uint32(m.V))
		e.u32(uint32(m.Block))
	}
	e.u32(uint32(resp.Expanded))
	return e.b
}

func decodeExpandOK(p []byte) (*shard.ExpandResponse, error) {
	d := dec{b: p}
	resp := &shard.ExpandResponse{
		Kw:    int(d.u32()),
		Block: int(d.u32()),
		Local: d.vs(),
	}
	n := d.count(8)
	if n > 0 {
		resp.Outbox = make([]shard.PortalMsg, n)
		for i := range resp.Outbox {
			resp.Outbox[i].V = graph.V(d.u32())
			resp.Outbox[i].Block = int32(d.u32())
		}
	}
	resp.Expanded = int(d.u32())
	return resp, d.done()
}

func encodeVerify(digest uint64, req *shard.VerifyRequest) []byte {
	var e enc
	e.u64(digest)
	e.u32(uint32(req.DMax))
	e.u32(uint32(len(req.Labels)))
	for _, l := range req.Labels {
		e.u32(uint32(l))
	}
	e.vs(req.Roots)
	return e.b
}

func decodeVerify(p []byte) (digest uint64, req *shard.VerifyRequest, err error) {
	d := dec{b: p}
	digest = d.u64()
	req = &shard.VerifyRequest{DMax: int(d.u32())}
	n := d.count(4)
	if n > 0 {
		req.Labels = make([]graph.Label, n)
		for i := range req.Labels {
			req.Labels[i] = graph.Label(d.u32())
		}
	}
	req.Roots = d.vs()
	return digest, req, d.done()
}

func encodeVerifyOK(resp *shard.VerifyResponse) []byte {
	var e enc
	e.u32(uint32(resp.Verified))
	e.u32(uint32(len(resp.Matches)))
	for i := range resp.Matches {
		m := &resp.Matches[i]
		e.u32(uint32(m.Root))
		e.u32(uint32(len(m.Dists)))
		for _, dv := range m.Dists {
			e.u32(uint32(dv))
		}
		e.vs(m.Nodes)
	}
	return e.b
}

func decodeVerifyOK(p []byte) (*shard.VerifyResponse, error) {
	d := dec{b: p}
	resp := &shard.VerifyResponse{Verified: int(d.u32())}
	n := d.count(4)
	if n > 0 {
		resp.Matches = make([]search.Match, 0, n)
		for i := 0; i < n && !d.bad; i++ {
			m := search.Match{Root: graph.V(d.u32())}
			nd := d.count(4)
			sum := 0
			if nd > 0 {
				m.Dists = make([]int, nd)
				for j := range m.Dists {
					m.Dists[j] = int(d.u32())
					sum += m.Dists[j]
				}
			}
			// Score is Σdist by construction on both sides: recomputing
			// it here keeps floats off the wire with zero drift (small
			// integer sums are exact in float64).
			m.Score = float64(sum)
			m.Nodes = d.vs()
			resp.Matches = append(resp.Matches, m)
		}
	}
	return resp, d.done()
}

func encodeErr(code int, msg string) []byte {
	var e enc
	e.u8(byte(code))
	e.str(msg)
	return e.b
}

func decodeErr(p []byte) error {
	d := dec{b: p}
	re := &RemoteError{Code: int(d.u8()), Msg: d.str()}
	if err := d.done(); err != nil {
		return err
	}
	return re
}

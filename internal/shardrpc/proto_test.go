package shardrpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"bigindex/internal/graph"
	"bigindex/internal/search"
	"bigindex/internal/shard"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)} {
		var buf bytes.Buffer
		if err := writeFrame(&buf, msgExpand, 42, payload); err != nil {
			t.Fatal(err)
		}
		fr, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if fr.msgType != msgExpand || fr.reqID != 42 || !bytes.Equal(fr.payload, payload) {
			t.Fatalf("round trip mangled frame: %+v", fr)
		}
	}
}

func TestReadFrameRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgHelloOK, 7, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one bit in every body byte position in turn: the CRC must
	// catch each one.
	for i := 4; i < len(raw)-4; i++ {
		cp := append([]byte(nil), raw...)
		cp[i] ^= 0x10
		if _, err := readFrame(bytes.NewReader(cp)); err == nil {
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
}

func TestReadFrameRejectsHostileHeaders(t *testing.T) {
	mk := func(bodyLen uint32, body []byte) []byte {
		out := binary.LittleEndian.AppendUint32(nil, bodyLen)
		out = append(out, body...)
		return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	}
	cases := map[string][]byte{
		"zero length":      mk(0, nil),
		"sub-header":       mk(8, bytes.Repeat([]byte{1}, 8)),
		"oversized length": mk(maxFrame+1, nil),
		"zero msg type":    mk(9, append([]byte{0}, make([]byte, 8)...)),
		"unknown msg type": mk(9, append([]byte{msgTypeCount}, make([]byte, 8)...)),
	}
	for name, raw := range cases {
		if _, err := readFrame(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Truncated stream: header promises more than arrives.
	raw := mk(100, nil)
	if _, err := readFrame(bytes.NewReader(raw)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestHelloCodec(t *testing.T) {
	want := HelloInfo{Digest: 0xDEADBEEFCAFE, Blocks: 17, BlockSize: 200, Vertices: 123456}
	got, err := decodeHelloOK(encodeHelloOK(want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestExpandCodec(t *testing.T) {
	for _, req := range []*shard.ExpandRequest{
		{Kw: 2, Block: 5, Level: 3, Frontier: []graph.V{1, 9, 200000}},
		{Kw: 0, Block: 0, Level: 0, Frontier: nil},
	} {
		digest, got, err := decodeExpand(encodeExpand(0x1234, req))
		if err != nil {
			t.Fatal(err)
		}
		if digest != 0x1234 || !reflect.DeepEqual(got, req) {
			t.Fatalf("got (%x, %+v) want (1234, %+v)", digest, got, req)
		}
	}
}

func TestExpandOKCodec(t *testing.T) {
	for _, resp := range []*shard.ExpandResponse{
		{Kw: 1, Block: 2, Local: []graph.V{3, 4}, Outbox: []shard.PortalMsg{{V: 9, Block: 1}, {V: 10, Block: 0}}, Expanded: 7},
		{Kw: 0, Block: 0, Local: nil, Outbox: nil, Expanded: 0},
	} {
		got, err := decodeExpandOK(encodeExpandOK(resp))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, resp) {
			t.Fatalf("got %+v want %+v", got, resp)
		}
	}
}

func TestVerifyCodec(t *testing.T) {
	req := &shard.VerifyRequest{Labels: []graph.Label{1, 2, 3}, DMax: 4, Roots: []graph.V{7, 8}}
	digest, got, err := decodeVerify(encodeVerify(99, req))
	if err != nil {
		t.Fatal(err)
	}
	if digest != 99 || !reflect.DeepEqual(got, req) {
		t.Fatalf("got (%d, %+v)", digest, got)
	}
}

func TestVerifyOKCodecRecomputesScore(t *testing.T) {
	resp := &shard.VerifyResponse{
		Verified: 3,
		Matches: []search.Match{
			{Root: 5, Dists: []int{0, 2, 1}, Score: 3, Nodes: []graph.V{5, 6, 7}},
			{Root: 9, Dists: []int{1}, Score: 1, Nodes: []graph.V{9}},
		},
	}
	got, err := decodeVerifyOK(encodeVerifyOK(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Fatalf("got %+v want %+v", got, resp)
	}
}

func TestErrCodec(t *testing.T) {
	err := decodeErr(encodeErr(ErrCodeStale, "digest mismatch"))
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != ErrCodeStale || re.Msg != "digest mismatch" {
		t.Fatalf("got %v", err)
	}
}

// TestDecoderRejectsHostileCounts pins the allocation guard: a length
// prefix claiming far more elements than the payload holds must fail
// cleanly instead of allocating gigabytes.
func TestDecoderRejectsHostileCounts(t *testing.T) {
	var e enc
	e.u32(0x7FFFFFFF) // Local count way beyond the bytes that follow
	e.u32(1)
	hostile := append(encodeExpandOK(&shard.ExpandResponse{})[:8], e.b...)
	if _, err := decodeExpandOK(hostile); err == nil {
		t.Fatal("hostile element count accepted")
	}
	// Truncated payloads across every codec.
	full := encodeExpandOK(&shard.ExpandResponse{Local: []graph.V{1, 2, 3}, Expanded: 3})
	for cut := 1; cut < len(full); cut++ {
		if _, err := decodeExpandOK(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

package shardrpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"

	"bigindex/internal/obs"
	"bigindex/internal/shard"
)

// ServerOptions configures a shard server.
type ServerOptions struct {
	// Blocks restricts which plan blocks this server answers (nil: all).
	// A request for a block outside the set is refused with
	// ErrCodeBadRequest — defense in depth against a misrouted
	// coordinator; routing itself is the client's membership config.
	Blocks []int
	// BlockSize is the partition target size advertised in the hello
	// (0 = shard.DefaultBlockSize). The client cross-checks it so both
	// sides provably derived the same deterministic partition.
	BlockSize int
	// Logger receives per-connection protocol errors. Nil discards.
	Logger *slog.Logger
}

// Server serves one plan's blocks over the framed TCP protocol. It is
// stateless between requests — the wrapped shard.Local is pure — so an
// abrupt kill loses nothing but the connections.
type Server struct {
	plan   *shard.Plan
	local  *shard.Local
	digest uint64
	opt    ServerOptions
	serves []bool // nil when all blocks are served

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a server for plan.
func NewServer(plan *shard.Plan, opt ServerOptions) *Server {
	if opt.BlockSize <= 0 {
		opt.BlockSize = shard.DefaultBlockSize
	}
	if opt.Logger == nil {
		opt.Logger = obs.DiscardLogger()
	}
	s := &Server{
		plan:   plan,
		local:  shard.NewLocal(plan),
		digest: plan.Graph().Digest(),
		opt:    opt,
		conns:  map[net.Conn]bool{},
	}
	if opt.Blocks != nil {
		s.serves = make([]bool, plan.NumBlocks())
		for _, b := range opt.Blocks {
			if b >= 0 && b < len(s.serves) {
				s.serves[b] = true
			}
		}
	}
	return s
}

// Hello reports what this server advertises.
func (s *Server) Hello() HelloInfo {
	return HelloInfo{
		Digest:    s.digest,
		Blocks:    s.plan.NumBlocks(),
		BlockSize: s.opt.BlockSize,
		Vertices:  s.plan.Graph().NumVertices(),
	}
}

// Listen binds addr and starts accepting in the background. The returned
// address is concrete (resolves ":0" test listeners).
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ServeListener(ln)
	return ln.Addr(), nil
}

// ServeListener starts accepting from ln in the background — the hook
// tests use to interpose a faultio.FaultListener.
func (s *Server) ServeListener(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops accepting, closes every connection, and waits for handlers
// to drain.
func (s *Server) Close() error {
	s.shutdown(false)
	s.wg.Wait()
	return nil
}

// Kill closes the listener and every connection abruptly (SO_LINGER 0,
// so in-flight peers see a reset, not an orderly FIN) and does not wait —
// the closest an in-process test gets to kill -9. Statelessness makes
// this safe at any instant: no request leaves partial state behind.
func (s *Server) Kill() {
	s.shutdown(true)
}

func (s *Server) shutdown(abrupt bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		if abrupt {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
		}
		conn.Close()
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		fr, err := readFrame(r)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.opt.Logger.Debug("shardrpc: connection dropped", "remote", conn.RemoteAddr(), "err", err)
			}
			return
		}
		mt, payload := s.handle(fr)
		if err := writeFrame(w, mt, fr.reqID, payload); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// handle serves one decoded frame. Malformed payloads and digest
// mismatches come back as structured errors — the connection itself is
// still in sync (the frame layer validated it), so it stays open.
func (s *Server) handle(fr frame) (byte, []byte) {
	switch fr.msgType {
	case msgHello:
		return msgHelloOK, encodeHelloOK(s.Hello())

	case msgExpand:
		digest, req, err := decodeExpand(fr.payload)
		if err != nil {
			return msgErr, encodeErr(ErrCodeBadRequest, err.Error())
		}
		if digest != s.digest {
			return msgErr, encodeErr(ErrCodeStale,
				fmt.Sprintf("graph digest %016x, request planned against %016x", s.digest, digest))
		}
		if req.Block < 0 || req.Block >= s.plan.NumBlocks() {
			return msgErr, encodeErr(ErrCodeBadRequest, fmt.Sprintf("block %d out of range", req.Block))
		}
		if s.serves != nil && !s.serves[req.Block] {
			return msgErr, encodeErr(ErrCodeBadRequest, fmt.Sprintf("block %d not served here", req.Block))
		}
		resp, err := s.local.Expand(context.Background(), req)
		if err != nil {
			return msgErr, encodeErr(ErrCodeInternal, err.Error())
		}
		return msgExpandOK, encodeExpandOK(resp)

	case msgVerify:
		digest, req, err := decodeVerify(fr.payload)
		if err != nil {
			return msgErr, encodeErr(ErrCodeBadRequest, err.Error())
		}
		if digest != s.digest {
			return msgErr, encodeErr(ErrCodeStale,
				fmt.Sprintf("graph digest %016x, request planned against %016x", s.digest, digest))
		}
		resp, err := s.local.Verify(context.Background(), req)
		if err != nil {
			return msgErr, encodeErr(ErrCodeInternal, err.Error())
		}
		return msgVerifyOK, encodeVerifyOK(resp)

	default:
		return msgErr, encodeErr(ErrCodeBadRequest, fmt.Sprintf("unexpected message type %d", fr.msgType))
	}
}

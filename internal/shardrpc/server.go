package shardrpc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bigindex/internal/obs"
	"bigindex/internal/shard"
)

// ServerOptions configures a shard server.
type ServerOptions struct {
	// Blocks restricts which plan blocks this server answers (nil: all).
	// A request for a block outside the set is refused with
	// ErrCodeBadRequest — defense in depth against a misrouted
	// coordinator; routing itself is the client's membership config.
	Blocks []int
	// BlockSize is the partition target size advertised in the hello
	// (0 = shard.DefaultBlockSize). The client cross-checks it so both
	// sides provably derived the same deterministic partition.
	BlockSize int
	// LegacyProto makes the server behave like a pre-capability build:
	// no capability tail in the hello, telemetry tails ignored, no
	// summaries, and post-legacy message types kill the connection the
	// way the old readFrame did. Compatibility tests and mixed-fleet
	// benches use it to prove a new coordinator interoperates with an
	// old peer byte for byte.
	LegacyProto bool
	// Logger receives per-connection protocol errors. Nil discards.
	Logger *slog.Logger
}

// Server serves one plan's blocks over the framed TCP protocol. It is
// stateless between requests — the wrapped shard.Local is pure — so an
// abrupt kill loses nothing but the connections.
type Server struct {
	plan   *shard.Plan
	local  *shard.Local
	digest uint64
	opt    ServerOptions
	serves []bool // nil when all blocks are served
	start  time.Time

	// Serve counters for the msgStats probe.
	expands  atomic.Int64
	verifies atomic.Int64
	errs     atomic.Int64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a server for plan.
func NewServer(plan *shard.Plan, opt ServerOptions) *Server {
	if opt.BlockSize <= 0 {
		opt.BlockSize = shard.DefaultBlockSize
	}
	if opt.Logger == nil {
		opt.Logger = obs.DiscardLogger()
	}
	s := &Server{
		plan:   plan,
		local:  shard.NewLocal(plan),
		digest: plan.Graph().Digest(),
		opt:    opt,
		start:  time.Now(),
		conns:  map[net.Conn]bool{},
	}
	if opt.Blocks != nil {
		s.serves = make([]bool, plan.NumBlocks())
		for _, b := range opt.Blocks {
			if b >= 0 && b < len(s.serves) {
				s.serves[b] = true
			}
		}
	}
	return s
}

// Hello reports what this server advertises.
func (s *Server) Hello() HelloInfo {
	return HelloInfo{
		Digest:    s.digest,
		Blocks:    s.plan.NumBlocks(),
		BlockSize: s.opt.BlockSize,
		Vertices:  s.plan.Graph().NumVertices(),
	}
}

// Listen binds addr and starts accepting in the background. The returned
// address is concrete (resolves ":0" test listeners).
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ServeListener(ln)
	return ln.Addr(), nil
}

// ServeListener starts accepting from ln in the background — the hook
// tests use to interpose a faultio.FaultListener.
func (s *Server) ServeListener(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops accepting, closes every connection, and waits for handlers
// to drain.
func (s *Server) Close() error {
	s.shutdown(false)
	s.wg.Wait()
	return nil
}

// Kill closes the listener and every connection abruptly (SO_LINGER 0,
// so in-flight peers see a reset, not an orderly FIN) and does not wait —
// the closest an in-process test gets to kill -9. Statelessness makes
// this safe at any instant: no request leaves partial state behind.
func (s *Server) Kill() {
	s.shutdown(true)
}

func (s *Server) shutdown(abrupt bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		if abrupt {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
		}
		conn.Close()
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		fr, err := readFrame(r)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.opt.Logger.Debug("shardrpc: connection dropped", "remote", conn.RemoteAddr(), "err", err)
			}
			return
		}
		if s.opt.LegacyProto && fr.msgType >= legacyMsgTypeCount {
			// A pre-capability readFrame rejected unknown types as a hard
			// protocol error and killed the connection; the emulation must
			// fail the same way or compat tests would pass vacuously.
			s.opt.Logger.Debug("shardrpc: legacy emulation dropping connection on unknown type",
				"remote", conn.RemoteAddr(), "type", fr.msgType)
			return
		}
		mt, payload := s.handle(fr)
		if err := writeFrame(w, mt, fr.reqID, payload); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// handle serves one decoded frame. Malformed payloads and digest
// mismatches come back as structured errors — the connection itself is
// still in sync (the frame layer validated it), so it stays open.
func (s *Server) handle(fr frame) (byte, []byte) {
	mt, payload := s.handleMsg(fr)
	if mt == msgErr {
		s.errs.Add(1)
	}
	return mt, payload
}

func (s *Server) handleMsg(fr frame) (byte, []byte) {
	switch fr.msgType {
	case msgHello:
		if s.opt.LegacyProto {
			return msgHelloOK, encodeHelloOK(s.Hello())
		}
		clientCaps := decodeHelloCaps(fr.payload)
		return msgHelloOK, encodeHelloOKCaps(s.Hello(), localCaps&clientCaps)

	case msgExpand:
		digest, req, tel, err := decodeExpandFull(fr.payload)
		if err != nil {
			return msgErr, encodeErr(ErrCodeBadRequest, err.Error())
		}
		if digest != s.digest {
			return msgErr, encodeErr(ErrCodeStale,
				fmt.Sprintf("graph digest %016x, request planned against %016x", s.digest, digest))
		}
		if req.Block < 0 || req.Block >= s.plan.NumBlocks() {
			return msgErr, encodeErr(ErrCodeBadRequest, fmt.Sprintf("block %d out of range", req.Block))
		}
		if s.serves != nil && !s.serves[req.Block] {
			return msgErr, encodeErr(ErrCodeBadRequest, fmt.Sprintf("block %d not served here", req.Block))
		}
		s.expands.Add(1)
		ctx, sp, led := s.beginCall(tel, "remote:expand")
		resp, err := s.local.Expand(ctx, req)
		if err != nil {
			return msgErr, encodeErr(ErrCodeInternal, err.Error())
		}
		out := encodeExpandOK(resp)
		if sp != nil {
			sp.SetAttr("kw", req.Kw).SetAttr("block", req.Block).
				SetAttr("level", req.Level).SetAttr("frontier", len(req.Frontier)).
				SetAttr("local", len(resp.Local)).SetAttr("outbox", len(resp.Outbox)).
				SetAttr("expanded", resp.Expanded)
			led.AddExpanded(int64(resp.Expanded))
			out = appendSummary(out, s.endCall(sp, led))
		}
		return msgExpandOK, out

	case msgVerify:
		digest, req, tel, err := decodeVerifyFull(fr.payload)
		if err != nil {
			return msgErr, encodeErr(ErrCodeBadRequest, err.Error())
		}
		if digest != s.digest {
			return msgErr, encodeErr(ErrCodeStale,
				fmt.Sprintf("graph digest %016x, request planned against %016x", s.digest, digest))
		}
		s.verifies.Add(1)
		ctx, sp, led := s.beginCall(tel, "remote:verify")
		resp, err := s.local.Verify(ctx, req)
		if err != nil {
			return msgErr, encodeErr(ErrCodeInternal, err.Error())
		}
		out := encodeVerifyOK(resp)
		if sp != nil {
			sp.SetAttr("roots", len(req.Roots)).SetAttr("dmax", req.DMax).
				SetAttr("verified", resp.Verified).SetAttr("matches", len(resp.Matches))
			led.AddExpanded(int64(resp.Verified))
			out = appendSummary(out, s.endCall(sp, led))
		}
		return msgVerifyOK, out

	case msgStats:
		if s.opt.LegacyProto {
			return msgErr, encodeErr(ErrCodeBadRequest, "unexpected message type 8")
		}
		return msgStatsOK, encodeStatsOK(s.stats())

	default:
		return msgErr, encodeErr(ErrCodeBadRequest, fmt.Sprintf("unexpected message type %d", fr.msgType))
	}
}

// RemoteSummary is the span/ledger report a shard server appends to a
// response when the request carried a sampled telemetry tail: the peer's
// own view of what the call cost, ready for the coordinator to graft.
type RemoteSummary struct {
	Span   *obs.SpanJSON       `json:"span,omitempty"`
	Ledger *obs.LedgerSnapshot `json:"ledger,omitempty"`
}

// beginCall opens the per-call observability scope when the request
// carried a sampled telemetry header: a local trace whose root span and
// ledger ride the context into shard.Local, exactly as a coordinator-side
// call would carry them. Without telemetry everything stays nil and the
// call path is the pre-telemetry one.
func (s *Server) beginCall(tel *Telemetry, name string) (context.Context, *obs.Span, *obs.Ledger) {
	ctx := context.Background()
	if s.opt.LegacyProto || tel == nil || !tel.Sampled {
		return ctx, nil, nil
	}
	sp := obs.NewTrace(name).Root()
	sp.SetAttr("remote_trace_id", tel.TraceID)
	if tel.ParentSpan != "" {
		sp.SetAttr("parent_span", tel.ParentSpan)
	}
	led := obs.NewLedger()
	ctx = obs.ContextWithLedger(obs.ContextWithSpan(ctx, sp), led)
	return ctx, sp, led
}

// endCall closes the per-call scope and renders the summary tail; a
// marshal failure drops the summary, never the answer.
func (s *Server) endCall(sp *obs.Span, led *obs.Ledger) []byte {
	sp.End()
	snap := sp.Trace().Snapshot()
	blob, err := json.Marshal(RemoteSummary{Span: &snap, Ledger: led.Snapshot()})
	if err != nil {
		return nil
	}
	return blob
}

// stats snapshots the server's self-report for the msgStats probe.
func (s *Server) stats() StatsInfo {
	served := s.plan.NumBlocks()
	if s.serves != nil {
		served = 0
		for _, ok := range s.serves {
			if ok {
				served++
			}
		}
	}
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	return StatsInfo{
		Digest:       fmt.Sprintf("%016x", s.digest),
		Blocks:       s.plan.NumBlocks(),
		BlocksServed: served,
		Vertices:     s.plan.Graph().NumVertices(),
		UptimeS:      int64(time.Since(s.start).Seconds()),
		Goroutines:   runtime.NumGoroutine(),
		HeapBytes:    mem.HeapAlloc,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Expands:      s.expands.Load(),
		Verifies:     s.verifies.Load(),
		Errors:       s.errs.Load(),
	}
}

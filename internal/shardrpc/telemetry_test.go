package shardrpc

import (
	"bufio"
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"bigindex/internal/faultio"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/search"
	"bigindex/internal/shard"
)

// tracedCtx returns a context carrying a fresh trace root and ledger,
// the way the HTTP server arms a query before evaluation.
func tracedCtx() (context.Context, *obs.Trace, *obs.Ledger) {
	tr := obs.NewTrace("query")
	led := obs.NewLedger()
	ctx := obs.ContextWithSpan(context.Background(), tr.Root())
	ctx = obs.ContextWithLedger(ctx, led)
	return ctx, tr, led
}

// findSpan walks a rendered span tree for the first span with name.
func findSpan(sj obs.SpanJSON, name string) *obs.SpanJSON {
	if sj.Name == name {
		return &sj
	}
	for i := range sj.Children {
		if got := findSpan(sj.Children[i], name); got != nil {
			return got
		}
	}
	return nil
}

// TestHelloCapsNegotiation: a current client negotiates the full
// capability set with a current server, and zero with a legacy one.
func TestHelloCapsNegotiation(t *testing.T) {
	g := testGraph(30, 60)
	plan := testPlan(t, g, 16)
	_, modern := startServer(t, plan, ServerOptions{})
	_, legacy := startServer(t, plan, ServerOptions{LegacyProto: true})

	c := NewClient(ClientOptions{Peers: mustPeers(t, modern+";"+legacy)})
	defer c.Close()
	for _, p := range c.peers {
		if _, err := c.helloPeer(p); err != nil {
			t.Fatalf("hello %s: %v", p.addr, err)
		}
	}
	if got := c.peers[0].caps.Load(); got != localCaps {
		t.Fatalf("modern peer caps = %#x, want %#x", got, localCaps)
	}
	if got := c.peers[1].caps.Load(); got != 0 {
		t.Fatalf("legacy peer caps = %#x, want 0", got)
	}
}

// TestTelemetryStitching runs a traced Expand and Verify at sample rate 1
// and checks the coordinator-side trace gained the rpc span with routing
// attrs, the grafted remote span, and the merged remote ledger — while
// the answers stay byte-identical to the in-process ground truth.
func TestTelemetryStitching(t *testing.T) {
	g := testGraph(31, 80)
	plan := testPlan(t, g, 16)
	local := shard.NewLocal(plan)
	_, addr := startServer(t, plan, ServerOptions{})

	c := NewClient(ClientOptions{Peers: mustPeers(t, addr), TelemetrySample: 1})
	defer c.Close()
	bnd := c.For(plan)

	ctx, tr, led := tracedCtx()
	req := &shard.ExpandRequest{Kw: 0, Block: 0, Level: 0, Frontier: seedFrontier(plan, g.DistinctLabels()[0], 0)}
	want, _ := local.Expand(context.Background(), req)
	got, err := bnd.Expand(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("telemetry changed the answer\n got: %+v\nwant: %+v", got, want)
	}
	vreq := &shard.VerifyRequest{Labels: g.DistinctLabels()[:2], DMax: 3, Roots: []graph.V{0, 1, 2}}
	vwant, _ := local.Verify(context.Background(), vreq)
	vgot, err := bnd.Verify(ctx, vreq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vgot, vwant) {
		t.Fatalf("telemetry changed the verify answer")
	}

	snap := tr.Snapshot()
	rpc := findSpan(snap, "rpc:expand")
	if rpc == nil {
		t.Fatalf("no rpc:expand span in trace: %+v", snap)
	}
	if rpc.Attrs["peer"] != addr {
		t.Fatalf("rpc span peer attr = %v, want %s", rpc.Attrs["peer"], addr)
	}
	if rpc.Attrs["block"] != 0 {
		t.Fatalf("rpc span block attr = %v, want 0", rpc.Attrs["block"])
	}
	remote := findSpan(snap, "remote:expand")
	if remote == nil {
		t.Fatalf("no grafted remote:expand span in stitched trace")
	}
	if remote.Attrs["remote_trace_id"] != tr.ID() {
		t.Fatalf("remote span trace id attr = %v, want %s", remote.Attrs["remote_trace_id"], tr.ID())
	}
	if findSpan(snap, "remote:verify") == nil {
		t.Fatalf("no grafted remote:verify span")
	}

	cost := led.Snapshot()
	if cost.RemoteCalls != 2 {
		t.Fatalf("remote calls = %d, want 2", cost.RemoteCalls)
	}
	wantUnits := int64(want.Expanded + vwant.Verified)
	if cost.RemoteWorkUnits != wantUnits {
		t.Fatalf("remote work units = %d, want %d", cost.RemoteWorkUnits, wantUnits)
	}
}

// TestTelemetryByteIdenticalAcrossModes compares Expand/Verify responses
// across telemetry off, telemetry on, and a mixed fleet where the peer is
// a legacy build: the standing invariant is byte-identical answers.
func TestTelemetryByteIdenticalAcrossModes(t *testing.T) {
	g := testGraph(32, 80)
	plan := testPlan(t, g, 16)
	_, modern := startServer(t, plan, ServerOptions{})
	_, legacy := startServer(t, plan, ServerOptions{LegacyProto: true})

	type mode struct {
		name   string
		addr   string
		sample float64
	}
	modes := []mode{
		{"telemetry-off", modern, 0},
		{"telemetry-on", modern, 1},
		{"telemetry-on-legacy-peer", legacy, 1},
	}
	var baseline []*shard.ExpandResponse
	for _, m := range modes {
		c := NewClient(ClientOptions{Peers: mustPeers(t, m.addr), TelemetrySample: m.sample})
		bnd := c.For(plan)
		ctx, _, _ := tracedCtx()
		var out []*shard.ExpandResponse
		for b := 0; b < plan.NumBlocks(); b++ {
			req := &shard.ExpandRequest{Kw: 0, Block: b, Level: 0, Frontier: seedFrontier(plan, g.DistinctLabels()[0], b)}
			resp, err := bnd.Expand(ctx, req)
			if err != nil {
				t.Fatalf("%s block %d: %v", m.name, b, err)
			}
			out = append(out, resp)
		}
		c.Close()
		if baseline == nil {
			baseline = out
			continue
		}
		if !reflect.DeepEqual(out, baseline) {
			t.Fatalf("%s answers differ from telemetry-off baseline", m.name)
		}
	}
}

// TestOldClientNewServer speaks the pre-capability protocol over a raw
// TCP connection — empty hello payload, no telemetry tails — and checks
// the new server's ExpandOK payload is byte-identical to the base
// encoding: no tail may appear unless the request carried telemetry.
func TestOldClientNewServer(t *testing.T) {
	g := testGraph(33, 60)
	plan := testPlan(t, g, 16)
	local := shard.NewLocal(plan)
	srv, addr := startServer(t, plan, ServerOptions{})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r, w := bufio.NewReader(conn), bufio.NewWriter(conn)

	roundTrip := func(mt byte, reqID uint64, payload []byte) frame {
		t.Helper()
		if err := writeFrame(w, mt, reqID, payload); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		fr, err := readFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}

	// Old-style hello: nil payload. The base decoder must still read the
	// HelloOK even though the new server appends a caps tail.
	fr := roundTrip(msgHello, 1, nil)
	if fr.msgType != msgHelloOK {
		t.Fatalf("hello answered with type %d", fr.msgType)
	}
	info, err := decodeHelloOK(fr.payload)
	if err != nil {
		t.Fatalf("old client cannot decode new HelloOK: %v", err)
	}
	if info != srv.Hello() {
		t.Fatalf("hello info %+v, want %+v", info, srv.Hello())
	}

	// Old-style expand: no telemetry tail. The response payload must be
	// byte-for-byte the base encoding.
	req := &shard.ExpandRequest{Kw: 0, Block: 0, Level: 0, Frontier: seedFrontier(plan, g.DistinctLabels()[0], 0)}
	fr = roundTrip(msgExpand, 2, encodeExpand(plan.Graph().Digest(), req))
	if fr.msgType != msgExpandOK {
		t.Fatalf("expand answered with type %d", fr.msgType)
	}
	want, _ := local.Expand(context.Background(), req)
	if !reflect.DeepEqual(fr.payload, encodeExpandOK(want)) {
		t.Fatalf("untraced response payload is not the base encoding (tail leaked to an old client)")
	}
}

// TestTelemetryTailGarbageIgnored feeds the server expand payloads with
// damaged trailing bytes — wrong magic, truncated tails, oversized trace
// IDs — and checks the answer is always the correct base response: a
// corrupted telemetry header may drop telemetry but never an answer.
func TestTelemetryTailGarbageIgnored(t *testing.T) {
	g := testGraph(34, 60)
	plan := testPlan(t, g, 16)
	local := shard.NewLocal(plan)
	srv := NewServer(plan, ServerOptions{})

	req := &shard.ExpandRequest{Kw: 0, Block: 0, Level: 0, Frontier: seedFrontier(plan, g.DistinctLabels()[0], 0)}
	base := encodeExpand(plan.Graph().Digest(), req)
	want, _ := local.Expand(context.Background(), req)
	wantPayload := encodeExpandOK(want)

	goodTail := appendTelemetry(nil, &Telemetry{TraceID: "abc", ParentSpan: "query", Sampled: true})
	tails := map[string][]byte{
		"wrong-magic":       {0xde, 0xad, 0xbe, 0xef, 1, 2, 3},
		"short-garbage":     {0x01},
		"magic-only":        {0x31, 0x4c, 0x45, 0x54}, // telMagic LE, then nothing
		"truncated-tail":    goodTail[:len(goodTail)-3],
		"empty-trace-id":    appendTelemetry(nil, &Telemetry{TraceID: "", Sampled: true}),
		"oversized-ID":      appendTelemetry(nil, &Telemetry{TraceID: string(make([]byte, 4096)), Sampled: true}),
		"unsampled-sampled": appendTelemetry(nil, &Telemetry{TraceID: "abc", Sampled: false}),
	}
	for name, tail := range tails {
		payload := append(append([]byte{}, base...), tail...)
		mt, out := srv.handle(frame{msgType: msgExpand, reqID: 1, payload: payload})
		if mt != msgExpandOK {
			t.Fatalf("%s: answered type %d (telemetry damage must not fail the request)", name, mt)
		}
		resp, err := decodeExpandOK(out)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(resp, want) {
			t.Fatalf("%s: corrupted tail corrupted the answer", name)
		}
		if !reflect.DeepEqual(out, wantPayload) {
			// None of these tails is a *valid sampled* header, so no summary
			// may be appended either.
			t.Fatalf("%s: response payload gained an unexpected tail", name)
		}
	}

	// And the one valid header: same answer, now with a summary tail.
	payload := append(append([]byte{}, base...), goodTail...)
	mt, out := srv.handle(frame{msgType: msgExpand, reqID: 2, payload: payload})
	if mt != msgExpandOK {
		t.Fatalf("valid tail: answered type %d", mt)
	}
	resp, summary, err := decodeExpandOKFull(out)
	if err != nil || !reflect.DeepEqual(resp, want) {
		t.Fatalf("valid tail: wrong answer (err=%v)", err)
	}
	if len(summary) == 0 {
		t.Fatalf("valid sampled header produced no summary tail")
	}
}

// TestStatsAndFleetSnapshot checks the Stats RPC surfaces serve counters
// through FleetSnapshot, and that a legacy peer is reported without stats
// (and never sent the probe, which would kill its connection).
func TestStatsAndFleetSnapshot(t *testing.T) {
	g := testGraph(35, 60)
	plan := testPlan(t, g, 16)
	_, modern := startServer(t, plan, ServerOptions{})
	_, legacy := startServer(t, plan, ServerOptions{LegacyProto: true})

	c := NewClient(ClientOptions{Peers: mustPeers(t, modern+"=0%2;"+legacy+"=1%2")})
	defer c.Close()
	bnd := c.For(plan)
	req := &shard.ExpandRequest{Kw: 0, Block: 0, Level: 0, Frontier: seedFrontier(plan, g.DistinctLabels()[0], 0)}
	if _, err := bnd.Expand(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	fleet := c.FleetSnapshot(context.Background())
	if len(fleet) != 2 {
		t.Fatalf("fleet rows = %d, want 2", len(fleet))
	}
	mod, leg := fleet[0], fleet[1]
	if !mod.Telemetry || mod.Stats == nil {
		t.Fatalf("modern peer row incomplete: %+v", mod)
	}
	if mod.Stats.Expands < 1 {
		t.Fatalf("modern peer stats did not count the expand: %+v", mod.Stats)
	}
	if mod.Stats.Digest == "" || mod.Stats.Blocks != plan.NumBlocks() || mod.Stats.GOMAXPROCS == 0 {
		t.Fatalf("modern peer stats incomplete: %+v", mod.Stats)
	}
	if leg.Telemetry || leg.Stats != nil {
		t.Fatalf("legacy peer must report no telemetry and no stats: %+v", leg)
	}
	if leg.Digest == "" || leg.NumBlocks != plan.NumBlocks() {
		t.Fatalf("legacy peer hello identity missing: %+v", leg)
	}
}

// TestCallLogRecordsPeerAttempts routes calls through a context call log
// with one dead and one live replica: the log must show attempts against
// both, with the dead peer charged at least one.
func TestCallLogRecordsPeerAttempts(t *testing.T) {
	g := testGraph(36, 60)
	plan := testPlan(t, g, 16)
	_, live := startServer(t, plan, ServerOptions{})
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	c := NewClient(ClientOptions{Peers: mustPeers(t, deadAddr+";"+live)})
	defer c.Close()
	bnd := c.For(plan)

	cl := NewCallLog()
	ctx := ContextWithCallLog(context.Background(), cl)
	for i := 0; i < 6; i++ {
		req := &shard.ExpandRequest{Kw: 0, Block: 0, Level: 0, Frontier: seedFrontier(plan, g.DistinctLabels()[0], 0)}
		if _, err := bnd.Expand(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	snap := cl.Snapshot()
	if snap[live] == 0 {
		t.Fatalf("live peer unrecorded: %v", snap)
	}
	if snap[deadAddr] == 0 {
		t.Fatalf("dead peer attempts unrecorded: %v", snap)
	}
}

// TestPeerFailureAttribution exhausts a single dead replica and checks
// the terminal error names the block and the peer — what the coordinator
// unwraps into the coverage report's failed_peers.
func TestPeerFailureAttribution(t *testing.T) {
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	g := testGraph(37, 40)
	plan := testPlan(t, g, 16)
	c := NewClient(ClientOptions{Peers: mustPeers(t, deadAddr), CallTimeout: 300 * time.Millisecond})
	defer c.Close()
	bnd := c.For(plan)
	_, err = bnd.Expand(context.Background(), &shard.ExpandRequest{Kw: 0, Block: 1, Frontier: []graph.V{0}})
	if err == nil {
		t.Fatal("dead fleet call should fail")
	}
	var pf interface{ FailedPeers() []string }
	if !asPeerFailure(err, &pf) {
		t.Fatalf("terminal error %T carries no peer attribution: %v", err, err)
	}
	peers := pf.FailedPeers()
	if len(peers) != 1 || peers[0] != deadAddr {
		t.Fatalf("failed peers = %v, want [%s]", peers, deadAddr)
	}
}

// asPeerFailure is errors.As via the interface the coordinator uses.
func asPeerFailure(err error, target *interface{ FailedPeers() []string }) bool {
	for err != nil {
		if pf, ok := err.(interface{ FailedPeers() []string }); ok {
			*target = pf
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestChaosMatrixWithTelemetry re-runs the transient-fault chaos matrix
// with telemetry at sample rate 1 and a traced, ledgered context: every
// injected fault — including ones that corrupt the frames carrying
// telemetry tails — must still yield the byte-identical answer within
// budget. Telemetry may degrade silently; answers may not.
func TestChaosMatrixWithTelemetry(t *testing.T) {
	g := testGraph(38, 90)
	q := g.DistinctLabels()[:2]
	want := sequentialAnswer(t, g, q, 5)
	const deadline = 5 * time.Second

	for _, tc := range chaosMatrix {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			firstOnly := func(i int) *faultio.ConnPlan {
				if i == 0 {
					p := tc.plan
					return &p
				}
				return nil
			}
			var srvPick, dialPick func(i int) *faultio.ConnPlan
			if tc.serverSide {
				srvPick = firstOnly
			} else {
				dialPick = firstOnly
			}
			_, addr := chaosServer(t, testPlan(t, g, 16), srvPick)
			var dial func(string, time.Duration) (net.Conn, error)
			if dialPick != nil {
				dial = chaosDial(dialPick)
			}
			c := NewClient(ClientOptions{
				Peers:           mustPeers(t, addr),
				CallTimeout:     500 * time.Millisecond,
				TelemetrySample: 1,
				Dial:            dial,
			})
			defer c.Close()

			got, cov, err := runQueryTraced(t, g, q, func(p *shard.Plan) shard.ShardServer { return c.For(p) }, deadline)
			if err != nil {
				t.Fatalf("query error: %v", err)
			}
			if cov != nil {
				t.Fatalf("transient fault should not degrade: %+v", cov)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("answer differs with telemetry on\n got: %v\nwant: %v", got, want)
			}
		})
	}
}

// runQueryTraced is chaos_test's runQuery with a trace and ledger in the
// context, so telemetry heads actually ride the wire.
func runQueryTraced(t *testing.T, g *graph.Graph, q []graph.Label, factory func(*shard.Plan) shard.ShardServer, timeout time.Duration) ([]search.Match, *shard.CoverageReport, error) {
	t.Helper()
	algo := shard.New(shard.ModeBKWS, 4, shard.Options{Workers: 4, BlockSize: 16, Server: factory})
	prep, err := algo.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	cov := shard.NewCoverage()
	ctx = shard.ContextWithCoverage(ctx, cov)
	tctx, _, _ := tracedCtx()
	ctx = obs.ContextWithSpan(ctx, obs.SpanFromContext(tctx))
	ctx = obs.ContextWithLedger(ctx, obs.LedgerFromContext(tctx))
	got, err := prep.(interface {
		SearchCtx(context.Context, []graph.Label, int) ([]search.Match, error)
	}).SearchCtx(ctx, q, 5)
	return got, cov.Report(), err
}

package snapshot

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"bigindex/internal/core"
	"bigindex/internal/ontology"
)

// Hooks intercepts the filesystem operations of SaveFileHooks so the
// fault-injection suite (internal/faultio) can kill a save at any point —
// mid-write, before fsync, before rename — and assert the previous
// snapshot is untouched. Nil fields use the real operation.
type Hooks struct {
	// WrapWriter wraps the temp-file writer (e.g. faultio.FailWriter).
	WrapWriter func(io.Writer) io.Writer
	// Fsync replaces file.Sync on the temp file.
	Fsync func(*os.File) error
	// Rename replaces os.Rename of the temp file onto the final path.
	Rename func(oldpath, newpath string) error
	// SyncDir replaces the post-rename fsync of the containing directory.
	SyncDir func(dir string) error
}

// SaveFile atomically writes a snapshot of idx to path: the bytes go to a
// temp file in the same directory, are fsynced, renamed over path, and the
// directory is fsynced. A crash at any point leaves either the previous
// file intact or the new file complete — never a torn file under the final
// name. The temp file is removed on failure.
func SaveFile(path string, idx *core.Index, meta Meta) error {
	return SaveFileHooks(path, idx, meta, Hooks{})
}

// SaveFileHooks is SaveFile with fault-injection hooks.
func SaveFileHooks(path string, idx *core.Index, meta Meta, h Hooks) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapshot: creating temp file: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	var base io.Writer = f
	if h.WrapWriter != nil {
		base = h.WrapWriter(f)
	}
	bw := bufio.NewWriter(base)
	if err = Write(bw, idx, meta); err != nil {
		return fmt.Errorf("snapshot: writing %s: %w", tmp, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("snapshot: writing %s: %w", tmp, err)
	}

	// Durability order matters: the file's bytes must be on stable storage
	// before the rename publishes them, and the directory entry must be
	// synced after, or a crash can surface a name pointing at nothing.
	fsync := h.Fsync
	if fsync == nil {
		fsync = (*os.File).Sync
	}
	if err = fsync(f); err != nil {
		return fmt.Errorf("snapshot: fsync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("snapshot: closing %s: %w", tmp, err)
	}

	rename := h.Rename
	if rename == nil {
		rename = os.Rename
	}
	if err = rename(tmp, path); err != nil {
		return fmt.Errorf("snapshot: publishing %s: %w", path, err)
	}

	syncDir := h.SyncDir
	if syncDir == nil {
		syncDir = fsyncDir
	}
	if err = syncDir(dir); err != nil {
		// The rename already happened; the snapshot is visible but its
		// directory entry may not survive a power loss. Report it — the
		// caller's next save retries the whole sequence.
		return fmt.Errorf("snapshot: fsync dir %s: %w", dir, err)
	}
	return nil
}

func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadFile reads and fully validates the snapshot at path. Corruption is
// reported as ErrBadSnapshot (via *CorruptError); a missing file is the
// usual fs.ErrNotExist, distinguishable so callers can treat "no snapshot
// yet" as a cold start rather than damage.
func LoadFile(path string, ont *ontology.Ontology) (*core.Index, Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Meta{}, err
	}
	defer f.Close()
	return Read(bufio.NewReader(f), ont)
}

// LoadFileFor is LoadFile plus source verification: the snapshot must have
// been built from a data graph with the given digest, or ErrSourceMismatch
// is returned. This is the daemon's boot path — serving an index built
// from different data would be silently wrong, which is worse than the
// rebuild the mismatch forces.
func LoadFileFor(path string, ont *ontology.Ontology, wantDigest uint64) (*core.Index, Meta, error) {
	idx, meta, err := LoadFile(path, ont)
	if err != nil {
		return nil, Meta{}, err
	}
	if meta.SourceDigest != wantDigest {
		return nil, Meta{}, fmt.Errorf("%w: snapshot digest %016x, want %016x",
			ErrSourceMismatch, meta.SourceDigest, wantDigest)
	}
	return idx, meta, nil
}

// LoadFileWithBase is the boot path for WAL-maintained deployments: the
// snapshot is accepted when it was built from the expected base graph
// directly (SourceDigest == base, no mutations yet) OR when it is a
// mutated descendant of that base (BaseDigest == base — the graph inside
// differs from the boot preset precisely because the WAL's batches were
// folded in). Anything else is ErrSourceMismatch: replaying this WAL onto
// that snapshot would splice mutation histories of unrelated graphs.
func LoadFileWithBase(path string, ont *ontology.Ontology, base uint64) (*core.Index, Meta, error) {
	idx, meta, err := LoadFile(path, ont)
	if err != nil {
		return nil, Meta{}, err
	}
	if meta.SourceDigest != base && meta.BaseDigest != base {
		return nil, Meta{}, fmt.Errorf("%w: snapshot source %016x / base %016x, want base %016x",
			ErrSourceMismatch, meta.SourceDigest, meta.BaseDigest, base)
	}
	return idx, meta, nil
}

// IsNotExist reports whether err is the "no snapshot file" case of
// LoadFile, as opposed to corruption or a read error.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

package snapshot

import (
	"bytes"
	"testing"

	"bigindex/internal/core"
	"bigindex/internal/datagen"
)

// FuzzLoad hardens the snapshot decoder the way internal/graph's FuzzRead
// hardens the graph decoder: arbitrary bytes must produce either a typed
// error or a fully validated index — never a panic, a hang, an oversized
// allocation, or a structurally inconsistent hierarchy.
func FuzzLoad(f *testing.F) {
	ds := datagen.Generate(datagen.Options{
		Name: "fuzz", Entities: 80, Terms: 20, LeafTypes: 4, Seed: 13,
	})
	opt := core.DefaultBuildOptions()
	opt.Search.SampleCount = 10
	idx, err := core.Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, idx, Meta{CreatedUnix: 1}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("BIGS"))
	f.Add([]byte("BIGG1234junk"))
	if len(valid) > 64 {
		f.Add(append([]byte(nil), valid[:len(valid)/2]...)) // truncation
		flip := append([]byte(nil), valid...)
		flip[40] ^= 0xff
		f.Add(flip) // bit rot
		long := append([]byte(nil), valid...)
		f.Add(append(long, 0xEE)) // trailing garbage
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, meta, err := Read(bytes.NewReader(data), nil)
		if err != nil {
			if got != nil {
				t.Fatal("error with non-nil index")
			}
			return
		}
		// A successfully decoded snapshot must be internally consistent:
		// NewFromLayers enforced the layer invariants, so spot-check what
		// the decoder itself is responsible for.
		if got.NumLayers() != meta.Layers || got.Epoch() != meta.Epoch {
			t.Fatalf("meta (%d layers, epoch %d) disagrees with index (%d, %d)",
				meta.Layers, meta.Epoch, got.NumLayers(), got.Epoch())
		}
		if got.Data().Digest() != meta.SourceDigest {
			t.Fatal("decoded data graph disagrees with stored digest")
		}
	})
}

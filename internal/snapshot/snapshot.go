// Package snapshot persists a complete BiG-index to disk and restores it
// on boot, so a process restart costs one sequential file read instead of
// a full Gen/Bisim rebuild (Sec. 3.1's construction pipeline is the
// expensive path; the hierarchy it produces is deterministic given the
// data graph and configurations, so reloading the stored hierarchy is
// observationally equivalent to rebuilding it).
//
// Binary on-disk format (little endian):
//
//	magic "BIGS" | version u32
//	sections, each: kind u8 | len u64 | payload | crc u32 (IEEE, payload only)
//	trailer: kind 0 u8 | crc u32 (IEEE, every preceding byte)
//
// Section order is fixed and enforced:
//
//	meta (1)                          JSON build metadata
//	dict (2)                          shared label dictionary, written once
//	body (3)                          layer 0, the data graph
//	then per summary layer i >= 1:
//	  config (4)                      Cⁱ as (from,to) label pairs
//	  body (3)                        Gⁱ
//	  up (5)                          χ: layer i-1 vertex -> supernode
//
// Down tables are not stored: they are Up's inverse with members ascending
// (exactly how bisim.Compute builds them), so the decoder reconstructs
// them, which both shrinks the file and removes a whole class of
// inconsistent-inverse corruption.
//
// Every decode failure — bad magic, unsupported version, a section CRC or
// whole-file CRC mismatch, truncation, trailing garbage, out-of-range
// references, Up/Down inversion failures — is reported as a *CorruptError
// matching errors.Is(err, ErrBadSnapshot), so callers can distinguish "the
// snapshot is damaged, rebuild" from environmental I/O errors.
package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"bigindex/internal/core"
	"bigindex/internal/generalize"
	"bigindex/internal/graph"
	"bigindex/internal/ontology"
)

const (
	fileMagic   = "BIGS"
	fileVersion = 1

	kindTrailer = 0
	kindMeta    = 1
	kindDict    = 2
	kindBody    = 3
	kindConfig  = 4
	kindUp      = 5

	// maxMetaLen bounds the JSON metadata section; a hostile length prefix
	// must not cause a large allocation before any payload byte is read.
	maxMetaLen = 1 << 20
	// maxSectionLen bounds graph-bearing sections. Parsing is streaming
	// (no payload-sized allocation happens up front), so this only rejects
	// absurd prefixes early.
	maxSectionLen = 1 << 32
	// maxLayers bounds the stored hierarchy height (the paper's indexes
	// use h <= 7; 1024 is far beyond any real configuration sequence).
	maxLayers = 1024
	// maxConfigRules bounds |Cⁱ| (cannot exceed the label alphabet, which
	// is itself bounded by the dictionary section).
	maxConfigRules = 1 << 24
)

// ErrBadSnapshot is the sentinel matched by every corruption error this
// package reports. errors.Is(err, ErrBadSnapshot) == true means the bytes
// are not a valid snapshot (damaged, truncated, tampered, or wrong file) —
// the caller should fall back to rebuilding, not retry the read.
var ErrBadSnapshot = errors.New("snapshot: invalid or corrupt snapshot")

// ErrSourceMismatch is returned by callers that verify a loaded snapshot
// against the data graph they expect to serve (LoadFileFor, the daemon's
// boot path) when the snapshot is internally valid but was built from a
// different source graph.
var ErrSourceMismatch = errors.New("snapshot: snapshot was built from a different source graph")

// CorruptError describes where and how snapshot decoding failed. It
// matches ErrBadSnapshot and unwraps to the underlying cause.
type CorruptError struct {
	Section string // which section (or "header"/"trailer") was being decoded
	Err     error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("snapshot: corrupt %s section: %v", e.Section, e.Err)
}

func (e *CorruptError) Unwrap() []error { return []error{ErrBadSnapshot, e.Err} }

func corruptf(section, format string, args ...any) error {
	return &CorruptError{Section: section, Err: fmt.Errorf(format, args...)}
}

// Meta is the build metadata stored alongside the index. CreatedUnix and
// BuildNote are caller-supplied; SourceDigest, Epoch, and Layers are
// filled by Write from the index itself.
type Meta struct {
	// CreatedUnix is the snapshot creation time (Unix seconds), supplied
	// by the caller so the format stays deterministic for a fixed input.
	CreatedUnix int64 `json:"created_unix"`
	// SourceDigest is graph.Digest of the data graph the index was built
	// from; boot-time verification compares it against the graph the
	// process is configured to serve.
	SourceDigest uint64 `json:"source_digest,string"`
	// Epoch is the index epoch at snapshot time, restored on load so
	// epoch-keyed caches and staleness accounting stay monotonic across a
	// restart.
	Epoch uint64 `json:"epoch"`
	// Layers is the total layer count (data graph + summaries), used by
	// the decoder to know how many per-layer section triples to expect.
	Layers int `json:"layers"`
	// BaseDigest, when non-zero, is graph.Digest of the *boot-time* data
	// graph the write-ahead log is anchored to. A WAL-maintained index
	// drifts away from that base (SourceDigest tracks the mutated graph),
	// so boot verification for live-mutation deployments accepts either
	// digest: SourceDigest for an unmutated snapshot, BaseDigest for one
	// that has absorbed mutation batches (LoadFileWithBase).
	BaseDigest uint64 `json:"base_digest,string,omitempty"`
	// WALSeq is the sequence number of the last WAL batch already folded
	// into this snapshot (0 = none). Boot replays only records with a
	// larger sequence; compaction persists a snapshot carrying the current
	// sequence before truncating the log, which is the whole crash-safety
	// argument for compaction.
	WALSeq uint64 `json:"wal_seq,omitempty"`
	// BuildNote is free-form provenance (dataset preset, build options).
	BuildNote string `json:"build_note,omitempty"`
}

// Write serializes idx to w. meta.CreatedUnix and meta.BuildNote are taken
// from the argument; every index-derived field is overwritten from idx so
// the metadata can never disagree with the payload it describes. Output is
// deterministic for a fixed (idx, meta) pair.
func Write(w io.Writer, idx *core.Index, meta Meta) error {
	meta.SourceDigest = idx.Data().Digest()
	meta.Epoch = idx.Epoch()
	meta.Layers = idx.NumLayers()

	fileCRC := crc32.NewIEEE()
	// Everything except the final whole-file checksum is hashed as it is
	// written; buffering sits below the tee so flush order cannot change
	// what the hash sees.
	out := io.MultiWriter(w, fileCRC)

	if _, err := out.Write([]byte(fileMagic)); err != nil {
		return err
	}
	if err := writeU32(out, fileVersion); err != nil {
		return err
	}

	mb, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("snapshot: encoding metadata: %w", err)
	}
	if err := writeSection(out, kindMeta, mb); err != nil {
		return err
	}

	var buf bytes.Buffer
	if err := graph.WriteDict(&buf, idx.Data().Dict()); err != nil {
		return err
	}
	if err := writeSection(out, kindDict, buf.Bytes()); err != nil {
		return err
	}

	buf.Reset()
	if err := idx.Data().WriteBody(&buf); err != nil {
		return err
	}
	if err := writeSection(out, kindBody, buf.Bytes()); err != nil {
		return err
	}

	for i := 1; i < idx.NumLayers(); i++ {
		l := idx.Layer(i)

		buf.Reset()
		ms := l.Config.Mappings()
		if err := writeU32(&buf, uint32(len(ms))); err != nil {
			return err
		}
		for _, m := range ms {
			if err := writeU32(&buf, uint32(m.From)); err != nil {
				return err
			}
			if err := writeU32(&buf, uint32(m.To)); err != nil {
				return err
			}
		}
		if err := writeSection(out, kindConfig, buf.Bytes()); err != nil {
			return err
		}

		buf.Reset()
		if err := l.Graph.WriteBody(&buf); err != nil {
			return err
		}
		if err := writeSection(out, kindBody, buf.Bytes()); err != nil {
			return err
		}

		buf.Reset()
		if err := writeU32(&buf, uint32(len(l.Up))); err != nil {
			return err
		}
		for _, s := range l.Up {
			if err := writeU32(&buf, uint32(s)); err != nil {
				return err
			}
		}
		if err := writeSection(out, kindUp, buf.Bytes()); err != nil {
			return err
		}
	}

	// Trailer: the kind byte is hashed (it precedes the checksum); the
	// checksum itself is not part of the checksummed stream.
	if _, err := out.Write([]byte{kindTrailer}); err != nil {
		return err
	}
	return writeU32(w, fileCRC.Sum32())
}

// Read decodes a snapshot written by Write and reassembles the index,
// validating everything it cannot afford to trust: magic and version,
// per-section and whole-file checksums, exact section lengths, label and
// vertex ranges, configuration well-formedness (against ont when non-nil),
// Up/Down mutual inversion (via core.NewFromLayers), and that the stored
// source digest matches the data graph actually decoded. The reader must
// be positioned at the start of the snapshot and is consumed exactly to
// its end: leftover bytes after the trailer are corruption, not slack.
func Read(r io.Reader, ont *ontology.Ontology) (*core.Index, Meta, error) {
	fileCRC := crc32.NewIEEE()
	tr := io.TeeReader(r, fileCRC)

	fail := func(err error) (*core.Index, Meta, error) { return nil, Meta{}, err }

	hdr := make([]byte, 4)
	if _, err := io.ReadFull(tr, hdr); err != nil {
		return fail(corruptf("header", "reading magic: %v", err))
	}
	if string(hdr) != fileMagic {
		return fail(corruptf("header", "bad magic %q", hdr))
	}
	ver, err := readU32(tr, "header")
	if err != nil {
		return fail(err)
	}
	if ver != fileVersion {
		return fail(corruptf("header", "unsupported version %d", ver))
	}

	// Section 1: metadata. Small enough to buffer whole.
	sec, err := beginSection(tr, kindMeta, "meta", maxMetaLen)
	if err != nil {
		return fail(err)
	}
	mb := make([]byte, sec.length)
	if _, err := io.ReadFull(sec, mb); err != nil {
		return fail(corruptf("meta", "reading payload: %v", err))
	}
	if err := sec.finish(); err != nil {
		return fail(err)
	}
	var meta Meta
	if err := json.Unmarshal(mb, &meta); err != nil {
		return fail(corruptf("meta", "decoding JSON: %v", err))
	}
	if meta.Layers < 1 || meta.Layers > maxLayers {
		return fail(corruptf("meta", "layer count %d out of range", meta.Layers))
	}

	// Section 2: the shared dictionary.
	sec, err = beginSection(tr, kindDict, "dict", maxSectionLen)
	if err != nil {
		return fail(err)
	}
	dict, err := graph.ReadDict(sec)
	if err != nil {
		return fail(corruptf("dict", "%v", err))
	}
	if err := sec.finish(); err != nil {
		return fail(err)
	}

	// Section 3: layer 0, the data graph.
	g0, err := readBodySection(tr, dict, "")
	if err != nil {
		return fail(err)
	}

	layers := []*core.Layer{{Graph: g0}}
	below := g0
	for i := 1; i < meta.Layers; i++ {
		cfg, err := readConfigSection(tr, dict)
		if err != nil {
			return fail(err)
		}

		gi, err := readBodySection(tr, dict, fmt.Sprintf("layer %d: ", i))
		if err != nil {
			return fail(err)
		}

		up, down, err := readUpSection(tr, below.NumVertices(), gi.NumVertices())
		if err != nil {
			return fail(err)
		}

		layers = append(layers, &core.Layer{Graph: gi, Config: cfg, Up: up, Down: down})
		below = gi
	}

	// Trailer: kind byte is inside the whole-file hash, the checksum is
	// read past the tee, and nothing may follow it.
	kind := make([]byte, 1)
	if _, err := io.ReadFull(tr, kind); err != nil {
		return fail(corruptf("trailer", "reading kind: %v", err))
	}
	if kind[0] != kindTrailer {
		return fail(corruptf("trailer", "unexpected section kind %d, want trailer", kind[0]))
	}
	want := fileCRC.Sum32()
	got, err := readU32(r, "trailer")
	if err != nil {
		return fail(err)
	}
	if got != want {
		return fail(corruptf("trailer", "file checksum mismatch (file %08x, computed %08x)", got, want))
	}
	var one [1]byte
	if n, err := r.Read(one[:]); n != 0 || (err != nil && err != io.EOF) {
		if n != 0 {
			return fail(corruptf("trailer", "trailing garbage after checksum"))
		}
		return fail(corruptf("trailer", "reading past end: %v", err))
	}

	idx, err := core.NewFromLayers(ont, layers)
	if err != nil {
		return fail(&CorruptError{Section: "index", Err: err})
	}
	if d := g0.Digest(); d != meta.SourceDigest {
		return fail(corruptf("meta", "source digest %016x does not match stored data graph %016x", meta.SourceDigest, d))
	}
	idx.RestoreEpoch(meta.Epoch)
	return idx, meta, nil
}

// readBodySection decodes one graph body through the in-memory fast path
// (graph.ReadBodyBytes): restore time is dominated by graph decoding, so
// the payload is materialized once and parsed without per-word reader
// calls. prefix tags errors with the layer being decoded.
func readBodySection(tr io.Reader, dict *graph.Dict, prefix string) (*graph.Graph, error) {
	sec, err := beginSection(tr, kindBody, "graph", maxSectionLen)
	if err != nil {
		return nil, err
	}
	data, err := sec.payload()
	if err != nil {
		return nil, err
	}
	g, err := graph.ReadBodyBytes(data, dict)
	if err != nil {
		return nil, corruptf("graph", "%s%v", prefix, err)
	}
	if err := sec.finish(); err != nil {
		return nil, err
	}
	return g, nil
}

// readConfigSection decodes one Cⁱ. The section length must be exactly
// 4 + 8·count, so a hostile count cannot request allocation beyond what
// the payload actually carries.
func readConfigSection(tr io.Reader, dict *graph.Dict) (*generalize.Config, error) {
	sec, err := beginSection(tr, kindConfig, "config", 4+8*maxConfigRules)
	if err != nil {
		return nil, err
	}
	count, err := readU32(sec, "config")
	if err != nil {
		return nil, err
	}
	if sec.length != 4+8*uint64(count) {
		return nil, corruptf("config", "section length %d inconsistent with %d rules", sec.length, count)
	}
	ms := make([]generalize.Mapping, 0, count)
	for j := uint32(0); j < count; j++ {
		from, err := readU32(sec, "config")
		if err != nil {
			return nil, err
		}
		to, err := readU32(sec, "config")
		if err != nil {
			return nil, err
		}
		if from == 0 || int(from) > dict.Len() || to == 0 || int(to) > dict.Len() {
			return nil, corruptf("config", "rule %d -> %d outside dictionary", from, to)
		}
		if from == to {
			return nil, corruptf("config", "identity rule for label %d", from)
		}
		ms = append(ms, generalize.Mapping{From: graph.Label(from), To: graph.Label(to)})
	}
	cfg, err := generalize.NewConfig(ms)
	if err != nil {
		return nil, &CorruptError{Section: "config", Err: err}
	}
	if cfg.Len() != int(count) {
		return nil, corruptf("config", "duplicate rules")
	}
	if err := sec.finish(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// readUpSection decodes one χ map and reconstructs its inverse. The vertex
// count must equal the layer below (checked before any allocation), every
// supernode reference must be in range, and members land in each Down row
// in ascending order — matching bisim.Compute exactly, so a restored index
// enumerates answers in the same order a rebuilt one would.
func readUpSection(tr io.Reader, below, here int) ([]graph.V, [][]graph.V, error) {
	sec, err := beginSection(tr, kindUp, "up", 4+4*uint64(below))
	if err != nil {
		return nil, nil, err
	}
	count, err := readU32(sec, "up")
	if err != nil {
		return nil, nil, err
	}
	if int(count) != below || sec.length != 4+4*uint64(count) {
		return nil, nil, corruptf("up", "map covers %d vertices, layer below has %d", count, below)
	}
	data, err := sec.payload()
	if err != nil {
		return nil, nil, err
	}
	up := make([]graph.V, below)
	counts := make([]uint32, here)
	for v := 0; v < below; v++ {
		s := binary.LittleEndian.Uint32(data[v*4:])
		if int(s) >= here {
			return nil, nil, corruptf("up", "vertex %d maps to supernode %d, layer has %d", v, s, here)
		}
		up[v] = graph.V(s)
		counts[s]++
	}
	// Down rows carved out of one flat allocation (growing each row with
	// append dominated restore time); members land ascending because the
	// fill pass walks vertices ascending.
	flat := make([]graph.V, below)
	down := make([][]graph.V, here)
	var start uint32
	for s := 0; s < here; s++ {
		end := start + counts[s]
		down[s] = flat[start:end:end]
		counts[s] = start // reuse as this row's write cursor
		start = end
	}
	for v := 0; v < below; v++ {
		s := up[v]
		flat[counts[s]] = graph.V(v)
		counts[s]++
	}
	if err := sec.finish(); err != nil {
		return nil, nil, err
	}
	return up, down, nil
}

// sectionReader streams one section's payload while hashing it, bounded by
// the declared length. finish verifies the payload was consumed exactly
// and that the stored per-section checksum matches.
//
// The parser reads the payload a few bytes at a time, so a bufio layer
// sits on top of the hashing tee: both CRCs then digest buffer-sized
// chunks (their fast slicing path) instead of being fed 4 bytes per call,
// which dominated load time before. bufio pulls from the LimitedReader,
// so it can never buffer past the section boundary into the next header.
type sectionReader struct {
	name   string
	length uint64
	lr     *io.LimitedReader
	tee    io.Reader     // lr teed into crc
	br     *bufio.Reader // lazily wraps tee so CRC updates see big chunks
	crc    hash.Hash32   // payload-only hash
	src    io.Reader     // the file-level stream, for the section checksum
}

// beginSection consumes a section header from src, enforcing the expected
// kind and a length cap.
func beginSection(src io.Reader, wantKind byte, name string, maxLen uint64) (*sectionReader, error) {
	kind := make([]byte, 1)
	if _, err := io.ReadFull(src, kind); err != nil {
		return nil, corruptf(name, "reading section kind: %v", err)
	}
	if kind[0] != wantKind {
		return nil, corruptf(name, "unexpected section kind %d, want %d", kind[0], wantKind)
	}
	length, err := readU64(src, name)
	if err != nil {
		return nil, err
	}
	if length > maxLen {
		return nil, corruptf(name, "section length %d exceeds limit %d", length, maxLen)
	}
	s := &sectionReader{
		name:   name,
		length: length,
		lr:     &io.LimitedReader{R: src, N: int64(length)},
		crc:    crc32.NewIEEE(),
		src:    src,
	}
	s.tee = io.TeeReader(s.lr, s.crc)
	return s, nil
}

func (s *sectionReader) Read(p []byte) (int, error) {
	if s.br == nil {
		s.br = bufio.NewReaderSize(s.tee, 32<<10)
	}
	return s.br.Read(p)
}

// payload reads the rest of the section into memory (for parsers with a
// byte fast path); bytes already consumed through Read are not replayed.
// Growth follows the bytes actually read, so a hostile length prefix
// cannot force a large allocation; only lengths small enough to be
// plausible are pre-reserved.
func (s *sectionReader) payload() ([]byte, error) {
	want := s.lr.N
	var buf bytes.Buffer
	if s.br != nil { // drain anything a prior streaming Read buffered
		want += int64(s.br.Buffered())
	}
	if want <= 1<<20 {
		buf.Grow(int(want))
	}
	if s.br != nil {
		if n := s.br.Buffered(); n > 0 {
			b, _ := s.br.Peek(n)
			buf.Write(b)
			if _, err := s.br.Discard(n); err != nil {
				return nil, corruptf(s.name, "draining payload: %v", err)
			}
		}
	}
	if _, err := buf.ReadFrom(s.tee); err != nil {
		return nil, corruptf(s.name, "reading payload: %v", err)
	}
	if int64(buf.Len()) != want {
		return nil, corruptf(s.name, "payload truncated at %d of %d bytes", buf.Len(), want)
	}
	return buf.Bytes(), nil
}

func (s *sectionReader) finish() error {
	left := s.lr.N
	if s.br != nil {
		left += int64(s.br.Buffered())
	}
	if left != 0 {
		return corruptf(s.name, "%d unconsumed payload bytes", left)
	}
	got, err := readU32(s.src, s.name)
	if err != nil {
		return err
	}
	if want := s.crc.Sum32(); got != want {
		return corruptf(s.name, "section checksum mismatch (file %08x, computed %08x)", got, want)
	}
	return nil
}

func writeSection(w io.Writer, kind byte, payload []byte) error {
	if _, err := w.Write([]byte{kind}); err != nil {
		return err
	}
	if err := writeU64(w, uint64(len(payload))); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return writeU32(w, crc32.ChecksumIEEE(payload))
}

func writeU32(w io.Writer, x uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], x)
	_, err := w.Write(b[:])
	return err
}

func writeU64(w io.Writer, x uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader, section string) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, corruptf(section, "reading u32: %v", err)
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readU64(r io.Reader, section string) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, corruptf(section, "reading u64: %v", err)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

package snapshot

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bigindex/internal/core"
	"bigindex/internal/datagen"
	"bigindex/internal/faultio"
)

// buildFixture builds a small but real multi-layer index once per process.
func buildFixture(t testing.TB) (*datagen.Dataset, *core.Index) {
	t.Helper()
	ds := datagen.Generate(datagen.Options{
		Name: "snap", Entities: 200, Terms: 40, LeafTypes: 6, Seed: 7,
	})
	opt := core.DefaultBuildOptions()
	opt.Search.SampleCount = 20
	idx, err := core.Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumLayers() < 2 {
		t.Fatalf("fixture built only %d layers; snapshot tests need summaries", idx.NumLayers())
	}
	return ds, idx
}

func encode(t testing.TB, idx *core.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, idx, Meta{CreatedUnix: 1700000000, BuildNote: "test"}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sameIndex asserts two indexes are structurally identical: layer count,
// per-layer graphs (labels + adjacency), configs, and both vertex maps.
func sameIndex(t *testing.T, want, got *core.Index) {
	t.Helper()
	if want.NumLayers() != got.NumLayers() {
		t.Fatalf("layers: want %d, got %d", want.NumLayers(), got.NumLayers())
	}
	if want.Epoch() != got.Epoch() {
		t.Fatalf("epoch: want %d, got %d", want.Epoch(), got.Epoch())
	}
	for m := 0; m < want.NumLayers(); m++ {
		wl, gl := want.Layer(m), got.Layer(m)
		if wl.Graph.Digest() != gl.Graph.Digest() {
			t.Fatalf("layer %d graph digest mismatch", m)
		}
		if m == 0 {
			continue
		}
		wm, gm := wl.Config.Mappings(), gl.Config.Mappings()
		if len(wm) != len(gm) {
			t.Fatalf("layer %d config size: want %d, got %d", m, len(wm), len(gm))
		}
		for i := range wm {
			// Labels live in different dictionaries; compare by name.
			if want.Data().Dict().Name(wm[i].From) != got.Data().Dict().Name(gm[i].From) ||
				want.Data().Dict().Name(wm[i].To) != got.Data().Dict().Name(gm[i].To) {
				t.Fatalf("layer %d config rule %d differs", m, i)
			}
		}
		if len(wl.Up) != len(gl.Up) || len(wl.Down) != len(gl.Down) {
			t.Fatalf("layer %d map sizes differ", m)
		}
		for v := range wl.Up {
			if wl.Up[v] != gl.Up[v] {
				t.Fatalf("layer %d Up[%d]: want %d, got %d", m, v, wl.Up[v], gl.Up[v])
			}
		}
		for s := range wl.Down {
			if len(wl.Down[s]) != len(gl.Down[s]) {
				t.Fatalf("layer %d Down[%d] sizes differ", m, s)
			}
			for i := range wl.Down[s] {
				if wl.Down[s][i] != gl.Down[s][i] {
					t.Fatalf("layer %d Down[%d][%d] differs", m, s, i)
				}
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	ds, idx := buildFixture(t)
	data := encode(t, idx)
	got, meta, err := Read(bytes.NewReader(data), ds.Ont)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	sameIndex(t, idx, got)
	if meta.SourceDigest != ds.Graph.Digest() {
		t.Fatalf("meta digest %016x, want %016x", meta.SourceDigest, ds.Graph.Digest())
	}
	if meta.CreatedUnix != 1700000000 || meta.BuildNote != "test" {
		t.Fatalf("caller meta not preserved: %+v", meta)
	}
	if meta.Layers != idx.NumLayers() {
		t.Fatalf("meta layers %d, want %d", meta.Layers, idx.NumLayers())
	}
}

func TestRoundTripPreservesEpoch(t *testing.T) {
	ds, idx := buildFixture(t)
	if err := idx.Refresh(ds.Graph); err != nil {
		t.Fatal(err)
	}
	if idx.Epoch() != 1 {
		t.Fatalf("epoch after refresh = %d", idx.Epoch())
	}
	got, meta, err := Read(bytes.NewReader(encode(t, idx)), ds.Ont)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch() != 1 || meta.Epoch != 1 {
		t.Fatalf("epoch not carried: index %d, meta %d", got.Epoch(), meta.Epoch)
	}
}

func TestWriteDeterministic(t *testing.T) {
	_, idx := buildFixture(t)
	if !bytes.Equal(encode(t, idx), encode(t, idx)) {
		t.Fatal("two Writes of the same index differ")
	}
}

// Every single-byte corruption anywhere in the file must be detected at
// load: the per-section and whole-file CRCs leave no byte uncovered (the
// trailer checksum bytes are themselves the comparison operand).
func TestSingleByteCorruptionSweep(t *testing.T) {
	ds, idx := buildFixture(t)
	data := encode(t, idx)
	step := 1
	if testing.Short() {
		step = 97
	}
	for off := 0; off < len(data); off += step {
		_, _, err := Read(bytes.NewReader(faultio.Flip(data, off)), ds.Ont)
		if err == nil {
			t.Fatalf("flip at offset %d/%d loaded successfully", off, len(data))
		}
		if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("flip at offset %d: error %v is not ErrBadSnapshot", off, err)
		}
	}
}

// Every proper prefix of the file must fail to load: a torn write (crash
// mid-write without the atomic rename protocol) can never produce an
// index silently missing its tail.
func TestTruncationSweep(t *testing.T) {
	ds, idx := buildFixture(t)
	data := encode(t, idx)
	step := 1
	if testing.Short() {
		step = 97
	}
	for n := 0; n < len(data); n += step {
		_, _, err := Read(bytes.NewReader(data[:n]), ds.Ont)
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded successfully", n, len(data))
		}
		if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("prefix %d: error %v is not ErrBadSnapshot", n, err)
		}
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	ds, idx := buildFixture(t)
	data := append(encode(t, idx), 0xAB)
	if _, _, err := Read(bytes.NewReader(data), ds.Ont); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("trailing garbage: got %v", err)
	}
}

func TestReadRejectsJunk(t *testing.T) {
	ds, _ := buildFixture(t)
	for _, in := range [][]byte{nil, []byte("x"), []byte("BIGG1234"), []byte("BIGS")} {
		if _, _, err := Read(bytes.NewReader(in), ds.Ont); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("input %q: got %v, want ErrBadSnapshot", in, err)
		}
	}
}

// A mid-load I/O error is reported, never a panic or a partial index.
func TestReadFailsCleanlyOnIOError(t *testing.T) {
	ds, idx := buildFixture(t)
	data := encode(t, idx)
	for _, budget := range []int64{0, 3, 17, int64(len(data) / 2), int64(len(data) - 1)} {
		got, _, err := Read(faultio.FailReader(bytes.NewReader(data), budget), ds.Ont)
		if err == nil || got != nil {
			t.Fatalf("budget %d: got index %v, err %v", budget, got, err)
		}
	}
}

// SaveFile's crash-safety contract: kill the write at EVERY byte offset
// and verify the previous good snapshot under the final name still loads.
// The atomic temp+rename protocol means a torn write is never visible.
func TestCrashAtEveryWritePoint(t *testing.T) {
	ds, idx := buildFixture(t)
	// Byte length of exactly what the sweep's saves will write (Write is
	// deterministic for a fixed meta).
	var sized bytes.Buffer
	if err := Write(&sized, idx, Meta{CreatedUnix: 2}); err != nil {
		t.Fatal(err)
	}
	data := sized.Bytes()
	dir := t.TempDir()
	path := filepath.Join(dir, "idx.bigs")

	// Establish the "previous good snapshot" the crash must not destroy.
	if err := SaveFile(path, idx, Meta{CreatedUnix: 1}); err != nil {
		t.Fatal(err)
	}
	prev, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	step := 1
	if testing.Short() {
		step = 509
	}
	for budget := 0; budget <= len(data); budget += step {
		err := SaveFileHooks(path, idx, Meta{CreatedUnix: 2}, Hooks{
			WrapWriter: func(w io.Writer) io.Writer { return faultio.FailWriter(w, int64(budget)) },
		})
		if budget < len(data) {
			if !errors.Is(err, faultio.ErrInjected) {
				t.Fatalf("budget %d: want injected failure, got %v", budget, err)
			}
			now, rerr := os.ReadFile(path)
			if rerr != nil || !bytes.Equal(now, prev) {
				t.Fatalf("budget %d: previous snapshot disturbed (read err %v)", budget, rerr)
			}
		} else if err != nil {
			t.Fatalf("budget %d (full write): %v", budget, err)
		}
	}

	// No temp litter: failed saves must clean up after themselves.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != filepath.Base(path) {
			t.Fatalf("leftover temp file %q", e.Name())
		}
	}

	// The final full-budget save replaced the snapshot; it must load.
	if _, _, err := LoadFile(path, ds.Ont); err != nil {
		t.Fatalf("snapshot after sweep: %v", err)
	}
}

// A disk that acknowledges writes it drops (faultio.ShortWriter) defeats
// in-process error handling by design — but the load-time checksums catch
// it, so the damage surfaces as ErrBadSnapshot, not silent data loss.
func TestLyingDiskCaughtAtLoad(t *testing.T) {
	ds, idx := buildFixture(t)
	var sized bytes.Buffer
	if err := Write(&sized, idx, Meta{CreatedUnix: 1}); err != nil {
		t.Fatal(err)
	}
	data := sized.Bytes()
	dir := t.TempDir()
	for _, budget := range []int64{0, 8, 64, int64(len(data) / 2), int64(len(data) - 1)} {
		path := filepath.Join(dir, "lying.bigs")
		err := SaveFileHooks(path, idx, Meta{CreatedUnix: 1}, Hooks{
			WrapWriter: func(w io.Writer) io.Writer { return faultio.ShortWriter(w, budget) },
		})
		if err != nil {
			t.Fatalf("budget %d: lying disk must not report failure: %v", budget, err)
		}
		if _, _, err := LoadFile(path, ds.Ont); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("budget %d: truncated-by-disk snapshot loaded: %v", budget, err)
		}
	}
}

// Failed fsync or rename must abort the publish and leave the previous
// snapshot untouched.
func TestFsyncAndRenameFailures(t *testing.T) {
	ds, idx := buildFixture(t)
	path := filepath.Join(t.TempDir(), "idx.bigs")
	if err := SaveFile(path, idx, Meta{CreatedUnix: 1}); err != nil {
		t.Fatal(err)
	}
	prev, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, h := range map[string]Hooks{
		"fsync":  {Fsync: faultio.FsyncError},
		"rename": {Rename: faultio.RenameError},
	} {
		if err := SaveFileHooks(path, idx, Meta{CreatedUnix: 2}, h); !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("%s: want injected failure, got %v", name, err)
		}
		now, rerr := os.ReadFile(path)
		if rerr != nil || !bytes.Equal(now, prev) {
			t.Fatalf("%s: previous snapshot disturbed", name)
		}
	}
	if _, _, err := LoadFile(path, ds.Ont); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFileForDigestCheck(t *testing.T) {
	ds, idx := buildFixture(t)
	path := filepath.Join(t.TempDir(), "idx.bigs")
	if err := SaveFile(path, idx, Meta{CreatedUnix: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFileFor(path, ds.Ont, ds.Graph.Digest()); err != nil {
		t.Fatalf("matching digest rejected: %v", err)
	}
	if _, _, err := LoadFileFor(path, ds.Ont, ds.Graph.Digest()+1); !errors.Is(err, ErrSourceMismatch) {
		t.Fatalf("mismatched digest: got %v, want ErrSourceMismatch", err)
	}
}

func TestLoadFileMissing(t *testing.T) {
	ds, _ := buildFixture(t)
	_, _, err := LoadFile(filepath.Join(t.TempDir(), "absent.bigs"), ds.Ont)
	if !IsNotExist(err) {
		t.Fatalf("missing file: got %v", err)
	}
	if errors.Is(err, ErrBadSnapshot) {
		t.Fatal("missing file must not look like corruption")
	}
}

// Corruption errors must carry the failing section so operators can see
// what broke, and must wrap ErrBadSnapshot for the fallback decision.
func TestCorruptErrorShape(t *testing.T) {
	ds, idx := buildFixture(t)
	data := encode(t, idx)
	_, _, err := Read(bytes.NewReader(faultio.Flip(data, len(data)/2)), ds.Ont)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *CorruptError", err)
	}
	if ce.Section == "" || !strings.Contains(err.Error(), ce.Section) {
		t.Fatalf("error %q does not name its section", err)
	}
}

// Mutating the stored metadata (even keeping JSON valid) breaks the
// section CRC; and a metadata digest that disagrees with the decoded
// graph is caught by the cross-check. Both are typed corruption.
func TestMetaCannotLieAboutDigest(t *testing.T) {
	ds, idx := buildFixture(t)
	data := encode(t, idx)
	i := bytes.Index(data, []byte("source_digest"))
	if i < 0 {
		t.Fatal("metadata JSON not found in snapshot bytes")
	}
	if _, _, err := Read(bytes.NewReader(faultio.Flip(data, i+20)), ds.Ont); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("tampered metadata: got %v", err)
	}
}

// TestLoadFileWithBase covers the WAL-anchored boot handshake: a snapshot
// of a *mutated* index records the boot-time base digest alongside the
// (different) source digest of the graph it actually contains, plus the
// last WAL batch folded in, and boot accepts it by either digest.
func TestLoadFileWithBase(t *testing.T) {
	ds, idx := buildFixture(t)
	base := ds.Graph.Digest()
	path := filepath.Join(t.TempDir(), "idx.snap")
	if err := SaveFile(path, idx, Meta{
		CreatedUnix: 1700000000, BaseDigest: base, WALSeq: 7,
	}); err != nil {
		t.Fatal(err)
	}

	// Accepted via SourceDigest (unmutated: source == base here).
	got, meta, err := LoadFileWithBase(path, ds.Ont, base)
	if err != nil {
		t.Fatalf("load with matching base: %v", err)
	}
	sameIndex(t, idx, got)
	if meta.BaseDigest != base || meta.WALSeq != 7 {
		t.Fatalf("meta round trip: base %016x, wal_seq %d", meta.BaseDigest, meta.WALSeq)
	}

	// A mutated descendant: SourceDigest drifts but BaseDigest anchors it.
	// Simulate by saving with a BaseDigest that differs from the source and
	// asking for that base.
	fakeBase := base ^ 0x1234
	if err := SaveFile(path, idx, Meta{CreatedUnix: 1700000000, BaseDigest: fakeBase, WALSeq: 3}); err != nil {
		t.Fatal(err)
	}
	if _, meta, err = LoadFileWithBase(path, ds.Ont, fakeBase); err != nil {
		t.Fatalf("load via BaseDigest: %v", err)
	}
	if meta.WALSeq != 3 {
		t.Fatalf("wal_seq = %d, want 3", meta.WALSeq)
	}

	// Neither digest matches: refusing is what keeps a WAL from being
	// replayed onto an unrelated graph's snapshot.
	if _, _, err := LoadFileWithBase(path, ds.Ont, base^0xffff); err == nil || !errors.Is(err, ErrSourceMismatch) {
		t.Fatalf("unrelated base accepted: %v", err)
	}
}

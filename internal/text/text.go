// Package text resolves free-text keywords to graph labels. The paper
// treats queries as exact label sets and explicitly leaves textual matching
// out of scope ("the textual search has not been the focus of this paper"),
// but any deployed keyword-search system needs the front end: users type
// "england club", not interned label IDs.
//
// The package builds an inverted index from tokenized label names to
// labels, with exact-token, all-token (AND), and prefix matching. It is a
// query-time component only — resolution happens before the BiG-index
// machinery sees the query — so it composes with every search semantics.
package text

import (
	"sort"
	"strings"
	"unicode"

	"bigindex/internal/graph"
)

// Index is an inverted token index over a dictionary's label names.
type Index struct {
	dict *graph.Dict
	// postings maps a token to the labels whose name contains it.
	postings map[string][]graph.Label
	// tokens is the sorted token vocabulary (for prefix scans).
	tokens []string
}

// Tokenize splits a label name into lowercase alphanumeric tokens.
// "Harvard Univ." -> ["harvard", "univ"]; "yago-s/term/17" ->
// ["yago", "s", "term", "17"].
func Tokenize(name string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range name {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return toks
}

// NewIndex indexes every label of dict that occurs in g (pass nil g to
// index the whole dictionary, including pure ontology types).
func NewIndex(dict *graph.Dict, g *graph.Graph) *Index {
	idx := &Index{dict: dict, postings: make(map[string][]graph.Label)}
	seen := make(map[string]map[graph.Label]bool)
	for _, l := range dict.Labels() {
		if g != nil && g.LabelCount(l) == 0 {
			continue
		}
		for _, tok := range Tokenize(dict.Name(l)) {
			if seen[tok] == nil {
				seen[tok] = make(map[graph.Label]bool)
			}
			if !seen[tok][l] {
				seen[tok][l] = true
				idx.postings[tok] = append(idx.postings[tok], l)
			}
		}
	}
	idx.tokens = make([]string, 0, len(idx.postings))
	for tok := range idx.postings {
		idx.tokens = append(idx.tokens, tok)
		sort.Slice(idx.postings[tok], func(i, j int) bool {
			return idx.postings[tok][i] < idx.postings[tok][j]
		})
	}
	sort.Strings(idx.tokens)
	return idx
}

// NumTokens reports the token vocabulary size.
func (x *Index) NumTokens() int { return len(x.tokens) }

// Exact returns the labels containing the given token.
func (x *Index) Exact(token string) []graph.Label {
	return x.postings[strings.ToLower(strings.TrimSpace(token))]
}

// Match resolves a free-text keyword: labels whose names contain *all*
// tokens of the input (AND semantics), ascending. "england club" matches
// a label named "England Club XI" but not "England".
func (x *Index) Match(keyword string) []graph.Label {
	toks := Tokenize(keyword)
	if len(toks) == 0 {
		return nil
	}
	result := x.postings[toks[0]]
	for _, tok := range toks[1:] {
		result = intersect(result, x.postings[tok])
		if len(result) == 0 {
			return nil
		}
	}
	return append([]graph.Label(nil), result...)
}

// Prefix returns the labels having any token with the given prefix —
// autocomplete-style lookup, bounded by limit (0 = all).
func (x *Index) Prefix(prefix string, limit int) []graph.Label {
	prefix = strings.ToLower(strings.TrimSpace(prefix))
	if prefix == "" {
		return nil
	}
	i := sort.SearchStrings(x.tokens, prefix)
	seen := make(map[graph.Label]bool)
	var out []graph.Label
	for ; i < len(x.tokens) && strings.HasPrefix(x.tokens[i], prefix); i++ {
		for _, l := range x.postings[x.tokens[i]] {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
				if limit > 0 && len(out) >= limit {
					sortLabels(out)
					return out
				}
			}
		}
	}
	sortLabels(out)
	return out
}

// Resolve maps each free-text keyword of a query to one label: the exact
// full-name match if unique, otherwise the most frequent Match candidate in
// g. Returns the resolution and a report line per ambiguous keyword.
func (x *Index) Resolve(keywords []string, g *graph.Graph) ([]graph.Label, []string, error) {
	out := make([]graph.Label, 0, len(keywords))
	var notes []string
	for _, kw := range keywords {
		// Full-name lookup first.
		if l := x.dict.Lookup(kw); l != graph.NoLabel && (g == nil || g.LabelCount(l) > 0) {
			out = append(out, l)
			continue
		}
		cands := x.Match(kw)
		if len(cands) == 0 {
			return nil, notes, &NoMatchError{Keyword: kw}
		}
		best := cands[0]
		if g != nil {
			for _, c := range cands[1:] {
				if g.LabelCount(c) > g.LabelCount(best) {
					best = c
				}
			}
		}
		if len(cands) > 1 {
			notes = append(notes, kw+": "+x.dict.Name(best)+" (of "+itoa(len(cands))+" candidates)")
		}
		out = append(out, best)
	}
	return out, notes, nil
}

// NoMatchError reports a keyword with no label candidates.
type NoMatchError struct{ Keyword string }

func (e *NoMatchError) Error() string { return "text: no label matches keyword " + e.Keyword }

func intersect(a, b []graph.Label) []graph.Label {
	var out []graph.Label
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func sortLabels(ls []graph.Label) {
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

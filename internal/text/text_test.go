package text

import (
	"errors"
	"slices"
	"testing"

	"bigindex/internal/graph"
)

func fixture(t *testing.T) (*Index, *graph.Graph, *graph.Dict) {
	t.Helper()
	dict := graph.NewDict()
	b := graph.NewBuilder(dict)
	b.AddVertex("Harvard Univ.")
	b.AddVertex("Cornell Univ.")
	b.AddVertex("England Club XI")
	b.AddVertex("England")
	b.AddVertex("England") // popular
	b.AddVertex("P. Graham")
	g := b.Build()
	return NewIndex(dict, g), g, dict
}

func TestTokenize(t *testing.T) {
	cases := map[string][]string{
		"Harvard Univ.":   {"harvard", "univ"},
		"yago-s/term/17":  {"yago", "s", "term", "17"},
		"  P.  Graham  ":  {"p", "graham"},
		"":                nil,
		"...":             nil,
		"UPPER lower 123": {"upper", "lower", "123"},
	}
	for in, want := range cases {
		if got := Tokenize(in); !slices.Equal(got, want) {
			t.Errorf("Tokenize(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestExactAndMatch(t *testing.T) {
	idx, _, dict := fixture(t)
	if idx.NumTokens() == 0 {
		t.Fatal("empty index")
	}
	// "univ" occurs in two labels.
	if got := idx.Exact("univ"); len(got) != 2 {
		t.Fatalf("Exact(univ) = %v", got)
	}
	// AND semantics: "england club" matches only the club label.
	got := idx.Match("england club")
	if len(got) != 1 || dict.Name(got[0]) != "England Club XI" {
		t.Fatalf("Match(england club) = %v", got)
	}
	// Single token "england" matches both England labels.
	if got := idx.Match("england"); len(got) != 2 {
		t.Fatalf("Match(england) = %v", got)
	}
	if got := idx.Match("no such thing"); got != nil {
		t.Fatalf("Match(miss) = %v", got)
	}
	if got := idx.Match(""); got != nil {
		t.Fatalf("Match(empty) = %v", got)
	}
}

func TestPrefix(t *testing.T) {
	idx, _, _ := fixture(t)
	// "un" prefixes "univ".
	if got := idx.Prefix("un", 0); len(got) != 2 {
		t.Fatalf("Prefix(un) = %v", got)
	}
	if got := idx.Prefix("e", 1); len(got) != 1 {
		t.Fatalf("Prefix limit: %v", got)
	}
	if got := idx.Prefix("", 0); got != nil {
		t.Fatalf("empty prefix: %v", got)
	}
}

func TestResolve(t *testing.T) {
	idx, g, dict := fixture(t)
	// Exact full-name resolution wins.
	ls, notes, err := idx.Resolve([]string{"England"}, g)
	if err != nil || len(ls) != 1 || dict.Name(ls[0]) != "England" {
		t.Fatalf("Resolve exact: %v %v %v", ls, notes, err)
	}
	// Ambiguous token resolves to the most frequent label with a note.
	ls, notes, err = idx.Resolve([]string{"england"}, g)
	if err != nil {
		t.Fatal(err)
	}
	if dict.Name(ls[0]) != "England" { // count 2 beats the club's 1
		t.Fatalf("ambiguous resolution = %s", dict.Name(ls[0]))
	}
	if len(notes) != 1 {
		t.Fatalf("notes = %v", notes)
	}
	// Missing keyword errors with a typed error.
	_, _, err = idx.Resolve([]string{"zzz"}, g)
	var nm *NoMatchError
	if !errors.As(err, &nm) || nm.Keyword != "zzz" {
		t.Fatalf("want NoMatchError, got %v", err)
	}
}

func TestIndexSkipsAbsentLabels(t *testing.T) {
	dict := graph.NewDict()
	dict.Intern("ghost label") // in dictionary, not in graph
	b := graph.NewBuilder(dict)
	b.AddVertex("real label")
	g := b.Build()

	idx := NewIndex(dict, g)
	if got := idx.Match("ghost"); got != nil {
		t.Fatalf("ghost label indexed: %v", got)
	}
	// nil graph indexes everything.
	idxAll := NewIndex(dict, nil)
	if got := idxAll.Match("ghost"); len(got) != 1 {
		t.Fatalf("nil-graph index missed ghost: %v", got)
	}
}

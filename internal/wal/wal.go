// Package wal provides the write-ahead log behind the live mutation service:
// every accepted mutation batch is appended — CRC-checked and fsync'd — to a
// single append-only file *before* it is applied to the served index, so a
// process that dies at any instant can reconstruct exactly the batches it
// acknowledged by replaying the log on top of the last snapshot.
//
// Binary on-disk format (little endian):
//
//	header: magic "BIGW" | version u32 | baseDigest u64
//	records, each: kind u8 (1 = batch) | len u32 | payload | crc u32 (IEEE, payload only)
//	payload: seq u64 | nv u32 | nv·label u32 | na u32 | na·(from u32, to u32) | nr u32 | nr·(from u32, to u32)
//
// baseDigest is graph.Digest of the pristine source graph the mutation
// history grew from; Open refuses a log whose base does not match the graph
// the process is configured to serve (replaying foreign mutations would be
// silently wrong). Batch sequence numbers are assigned by the caller,
// strictly monotonic; within one file they must be contiguous, which lets
// the boot path detect a snapshot/log mismatch (a gap) instead of silently
// skipping acknowledged mutations.
//
// Crash model: the only damage a kill -9 (or power loss) can inflict is a
// torn tail — the record whose append never returned. Open therefore treats
// the first invalid record as end-of-log, truncates the file back to the
// last valid record boundary, and reports how many bytes were dropped; a
// batch that was never acknowledged is not data loss. A failed Append
// likewise truncates its own partial record so the next append cannot land
// after garbage.
//
// Compaction: once the applied state is captured in a durable snapshot
// (whose metadata records the last covered sequence number), Reset truncates
// the log back to its header. The correct ordering — snapshot first, then
// Reset — means a crash between the two leaves stale records that replay as
// no-ops (their seq is covered by the snapshot), never a hole.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"bigindex/internal/graph"
)

const (
	fileMagic   = "BIGW"
	fileVersion = 1
	headerLen   = 4 + 4 + 8

	recBatch = 1

	// maxRecordLen bounds one record's payload; a hostile or garbage length
	// prefix must read as a torn tail, not a multi-gigabyte allocation.
	maxRecordLen = 1 << 28
	// maxBatchItems bounds the item count fields inside a payload for the
	// same reason.
	maxBatchItems = 1 << 24
)

// ErrBadLog is the sentinel matched by every structural-corruption error
// (bad magic, unsupported version, impossible lengths). Torn tails are NOT
// ErrBadLog — they are expected crash damage, healed by truncation.
var ErrBadLog = errors.New("wal: invalid log file")

// ErrBaseMismatch is returned by Open when the log exists but records
// mutations of a different source graph.
var ErrBaseMismatch = errors.New("wal: log was created for a different source graph")

// ErrClosed is returned by operations on a closed or broken log.
var ErrClosed = errors.New("wal: log is closed")

// Batch is one durable mutation batch: vertices to append (by dictionary
// label), edges to add, and edges to remove. Seq is the caller-assigned
// batch number, strictly monotonic across the life of the deployment
// (compaction does not reset it — the snapshot records the last covered
// seq instead).
type Batch struct {
	Seq         uint64
	AddVertices []graph.Label
	AddEdges    []graph.Edge
	RemoveEdges []graph.Edge
}

// Items reports the batch's total mutation count.
func (b Batch) Items() int { return len(b.AddVertices) + len(b.AddEdges) + len(b.RemoveEdges) }

// Hooks intercepts the log's filesystem operations so the fault-injection
// suite (internal/faultio) can kill an append at any byte or fail the
// fsync. Nil fields use the real operation.
type Hooks struct {
	// WrapWriter wraps the file for record writes (e.g. faultio.FailWriter);
	// truncation and header writes bypass it.
	WrapWriter func(io.Writer) io.Writer
	// Fsync replaces file.Sync after each append and reset.
	Fsync func(*os.File) error
}

// Options configures Open.
type Options struct {
	// BaseDigest is graph.Digest of the pristine source graph. A new log
	// stores it; an existing log must match it.
	BaseDigest uint64
	// Hooks injects faults (tests).
	Hooks Hooks
}

// ReplayInfo reports what Open found in an existing log.
type ReplayInfo struct {
	// Batches are the valid records, in append order.
	Batches []Batch
	// Truncated is true when a torn tail was cut off.
	Truncated bool
	// DroppedBytes is how many trailing bytes the truncation removed.
	DroppedBytes int64
}

// Log is an open write-ahead log. Append/Reset/Size are not safe for
// concurrent use; the mutation service serializes access.
type Log struct {
	f      *os.File
	w      io.Writer // f, possibly wrapped by Hooks.WrapWriter
	fsync  func(*os.File) error
	off    int64 // end of the last durable record
	seq    uint64
	broken bool
}

// Open opens (creating if absent) the log at path and replays its records.
// A torn tail is truncated in place; structural corruption (bad header) and
// a base-digest mismatch are errors — the operator must decide, because
// deleting a log discards acknowledged mutations.
func Open(path string, opt Options) (*Log, ReplayInfo, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, ReplayInfo{}, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	l := &Log{f: f, w: f, fsync: opt.Hooks.Fsync}
	if opt.Hooks.WrapWriter != nil {
		l.w = opt.Hooks.WrapWriter(f)
	}
	if l.fsync == nil {
		l.fsync = (*os.File).Sync
	}

	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, ReplayInfo{}, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	if st.Size() == 0 {
		// Fresh log: persist the header before acknowledging anything.
		var hdr [headerLen]byte
		copy(hdr[:4], fileMagic)
		binary.LittleEndian.PutUint32(hdr[4:8], fileVersion)
		binary.LittleEndian.PutUint64(hdr[8:16], opt.BaseDigest)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, ReplayInfo{}, fmt.Errorf("wal: writing header: %w", err)
		}
		if err := l.fsync(f); err != nil {
			f.Close()
			return nil, ReplayInfo{}, fmt.Errorf("wal: fsync header: %w", err)
		}
		if err := fsyncDir(path); err != nil {
			f.Close()
			return nil, ReplayInfo{}, fmt.Errorf("wal: fsync dir: %w", err)
		}
		l.off = headerLen
		return l, ReplayInfo{}, nil
	}

	info, err := l.scan(opt.BaseDigest, st.Size())
	if err != nil {
		f.Close()
		return nil, ReplayInfo{}, err
	}
	return l, info, nil
}

// scan validates the header, replays records, and truncates a torn tail.
func (l *Log) scan(wantBase uint64, size int64) (ReplayInfo, error) {
	if size < headerLen {
		// Even the header is torn: the log acknowledged nothing, so an
		// empty-but-valid log is the correct recovery. Rewrite it.
		if err := l.reinit(wantBase); err != nil {
			return ReplayInfo{}, err
		}
		return ReplayInfo{Truncated: true, DroppedBytes: size}, nil
	}
	hdr := make([]byte, headerLen)
	if _, err := l.f.ReadAt(hdr, 0); err != nil {
		return ReplayInfo{}, fmt.Errorf("wal: reading header: %w", err)
	}
	if string(hdr[:4]) != fileMagic {
		return ReplayInfo{}, fmt.Errorf("%w: bad magic %q", ErrBadLog, hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != fileVersion {
		return ReplayInfo{}, fmt.Errorf("%w: unsupported version %d", ErrBadLog, v)
	}
	if base := binary.LittleEndian.Uint64(hdr[8:16]); base != wantBase {
		return ReplayInfo{}, fmt.Errorf("%w: log base %016x, serving source %016x", ErrBaseMismatch, base, wantBase)
	}

	var info ReplayInfo
	off := int64(headerLen)
	for off < size {
		b, next, ok := l.readRecord(off, size)
		if !ok {
			break // torn tail starts here
		}
		if len(info.Batches) > 0 && b.Seq != info.Batches[len(info.Batches)-1].Seq+1 {
			// Non-contiguous acknowledged records cannot come from a crash;
			// the file is damaged in a way truncation cannot explain.
			return ReplayInfo{}, fmt.Errorf("%w: batch seq %d follows %d", ErrBadLog, b.Seq, info.Batches[len(info.Batches)-1].Seq)
		}
		info.Batches = append(info.Batches, b)
		l.seq = b.Seq
		off = next
	}
	if off < size {
		info.Truncated = true
		info.DroppedBytes = size - off
		if err := l.truncateTo(off); err != nil {
			return ReplayInfo{}, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	l.off = off
	return info, nil
}

// readRecord decodes the record at off; ok=false means the bytes from off
// on do not form a complete valid record (the torn-tail case).
func (l *Log) readRecord(off, size int64) (Batch, int64, bool) {
	var head [5]byte
	if off+int64(len(head)) > size {
		return Batch{}, 0, false
	}
	if _, err := l.f.ReadAt(head[:], off); err != nil {
		return Batch{}, 0, false
	}
	if head[0] != recBatch {
		return Batch{}, 0, false
	}
	plen := int64(binary.LittleEndian.Uint32(head[1:5]))
	if plen > maxRecordLen || off+5+plen+4 > size {
		return Batch{}, 0, false
	}
	buf := make([]byte, plen+4)
	if _, err := l.f.ReadAt(buf, off+5); err != nil {
		return Batch{}, 0, false
	}
	payload, stored := buf[:plen], binary.LittleEndian.Uint32(buf[plen:])
	if crc32.ChecksumIEEE(payload) != stored {
		return Batch{}, 0, false
	}
	b, err := decodeBatch(payload)
	if err != nil {
		return Batch{}, 0, false
	}
	return b, off + 5 + plen + 4, true
}

// Append encodes b, writes it, and fsyncs before returning. Only a nil
// return means the batch is durable; on error the partial record is
// truncated away so the log stays well-formed (if even the truncation
// fails, the log marks itself broken and refuses further appends).
func (l *Log) Append(b Batch) error {
	if l.broken {
		return ErrClosed
	}
	if b.Seq <= l.seq {
		return fmt.Errorf("wal: batch seq %d not after %d", b.Seq, l.seq)
	}
	payload := encodeBatch(b)
	rec := make([]byte, 0, 5+len(payload)+4)
	rec = append(rec, recBatch)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))

	if _, err := l.f.Seek(l.off, io.SeekStart); err != nil {
		return l.fail(fmt.Errorf("wal: seek: %w", err))
	}
	if _, err := l.w.Write(rec); err != nil {
		return l.fail(fmt.Errorf("wal: append: %w", err))
	}
	if err := l.fsync(l.f); err != nil {
		return l.fail(fmt.Errorf("wal: fsync: %w", err))
	}
	l.off += int64(len(rec))
	l.seq = b.Seq
	return nil
}

// fail heals the log after a mid-append error by cutting the partial
// record; the append error is returned either way.
func (l *Log) fail(err error) error {
	if terr := l.truncateTo(l.off); terr != nil {
		l.broken = true
	}
	return err
}

func (l *Log) truncateTo(off int64) error {
	if err := l.f.Truncate(off); err != nil {
		return err
	}
	return l.fsync(l.f)
}

// reinit rewrites a valid empty log in place (used when even the header
// was torn).
func (l *Log) reinit(base uint64) error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reinit truncate: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:4], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], fileVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], base)
	if _, err := l.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("wal: reinit header: %w", err)
	}
	if err := l.fsync(l.f); err != nil {
		return fmt.Errorf("wal: reinit fsync: %w", err)
	}
	l.off = headerLen
	return nil
}

// Mark captures the log's current durable position (offset + sequence)
// for a possible Rollback.
type Mark struct {
	off int64
	seq uint64
}

// Mark returns the current durable position. The mutation service takes a
// mark before appending a batch so a batch whose *apply* step fails can be
// rolled back — the client got an error, so the record must not resurrect
// at boot replay as if it had been acknowledged.
func (l *Log) Mark() Mark { return Mark{off: l.off, seq: l.seq} }

// Rollback truncates the log back to a mark taken earlier, discarding
// every record appended since. If the truncation itself fails the log
// wedges itself (ErrClosed thereafter): appending after an unremovable
// orphan record would corrupt the sequence contiguity invariant.
func (l *Log) Rollback(m Mark) error {
	if l.broken {
		return ErrClosed
	}
	if m.off < headerLen || m.off > l.off {
		return fmt.Errorf("wal: rollback to invalid offset %d (log at %d)", m.off, l.off)
	}
	if err := l.truncateTo(m.off); err != nil {
		l.broken = true
		return fmt.Errorf("wal: rollback: %w", err)
	}
	l.off = m.off
	l.seq = m.seq
	return nil
}

// Reset truncates the log back to its header — compaction, called only
// after a snapshot covering every logged batch is durable. The sequence
// counter is NOT reset: later appends continue the deployment-wide
// numbering the snapshot metadata refers to.
func (l *Log) Reset() error {
	if l.broken {
		return ErrClosed
	}
	if err := l.truncateTo(headerLen); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	l.off = headerLen
	return nil
}

// LastSeq reports the highest batch sequence number the log has seen
// (from replay or appends); 0 means none.
func (l *Log) LastSeq() uint64 { return l.seq }

// SetLastSeq advances the sequence floor — boot uses it when the snapshot
// covers batches the (compacted) log no longer holds, so fresh appends
// continue the deployment-wide numbering.
func (l *Log) SetLastSeq(seq uint64) {
	if seq > l.seq {
		l.seq = seq
	}
}

// Size reports the log's current byte length (header included) — the
// -wal-max-bytes compaction trigger reads it after every append.
func (l *Log) Size() int64 { return l.off }

// Close closes the underlying file. The log must not be used afterwards.
func (l *Log) Close() error {
	l.broken = true
	return l.f.Close()
}

func encodeBatch(b Batch) []byte {
	n := 8 + 4 + 4*len(b.AddVertices) + 4 + 8*len(b.AddEdges) + 4 + 8*len(b.RemoveEdges)
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint64(out, b.Seq)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.AddVertices)))
	for _, l := range b.AddVertices {
		out = binary.LittleEndian.AppendUint32(out, uint32(l))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.AddEdges)))
	for _, e := range b.AddEdges {
		out = binary.LittleEndian.AppendUint32(out, uint32(e.From))
		out = binary.LittleEndian.AppendUint32(out, uint32(e.To))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.RemoveEdges)))
	for _, e := range b.RemoveEdges {
		out = binary.LittleEndian.AppendUint32(out, uint32(e.From))
		out = binary.LittleEndian.AppendUint32(out, uint32(e.To))
	}
	return out
}

func decodeBatch(p []byte) (Batch, error) {
	var b Batch
	r := byteReader{p: p}
	b.Seq = r.u64()
	nv := r.u32()
	if nv > maxBatchItems {
		return Batch{}, fmt.Errorf("vertex count %d", nv)
	}
	for i := uint32(0); i < nv && r.err == nil; i++ {
		b.AddVertices = append(b.AddVertices, graph.Label(r.u32()))
	}
	na := r.u32()
	if na > maxBatchItems {
		return Batch{}, fmt.Errorf("add-edge count %d", na)
	}
	for i := uint32(0); i < na && r.err == nil; i++ {
		from, to := r.u32(), r.u32()
		b.AddEdges = append(b.AddEdges, graph.Edge{From: graph.V(from), To: graph.V(to)})
	}
	nr := r.u32()
	if nr > maxBatchItems {
		return Batch{}, fmt.Errorf("remove-edge count %d", nr)
	}
	for i := uint32(0); i < nr && r.err == nil; i++ {
		from, to := r.u32(), r.u32()
		b.RemoveEdges = append(b.RemoveEdges, graph.Edge{From: graph.V(from), To: graph.V(to)})
	}
	if r.err != nil {
		return Batch{}, r.err
	}
	if r.off != len(p) {
		return Batch{}, fmt.Errorf("%d trailing payload bytes", len(p)-r.off)
	}
	return b, nil
}

type byteReader struct {
	p   []byte
	off int
	err error
}

func (r *byteReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.p) {
		if r.err == nil {
			r.err = io.ErrUnexpectedEOF
		}
		return 0
	}
	v := binary.LittleEndian.Uint32(r.p[r.off:])
	r.off += 4
	return v
}

func (r *byteReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.p) {
		if r.err == nil {
			r.err = io.ErrUnexpectedEOF
		}
		return 0
	}
	v := binary.LittleEndian.Uint64(r.p[r.off:])
	r.off += 8
	return v
}

func fsyncDir(path string) error {
	d, err := os.Open(dirOf(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i+1]
		}
	}
	return "."
}

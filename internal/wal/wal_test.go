package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bigindex/internal/faultio"
	"bigindex/internal/graph"
)

const testBase = uint64(0xdeadbeefcafe1234)

func testBatches(n int) []Batch {
	out := make([]Batch, n)
	for i := range out {
		out[i] = Batch{
			Seq:         uint64(i + 1),
			AddVertices: []graph.Label{graph.Label(i), graph.Label(2 * i)},
			AddEdges:    []graph.Edge{{From: graph.V(i), To: graph.V(i + 1)}},
			RemoveEdges: []graph.Edge{{From: graph.V(i + 2), To: graph.V(i)}},
		}
		if i%2 == 0 {
			out[i].RemoveEdges = nil
		}
		if i%3 == 0 {
			out[i].AddVertices = nil
		}
	}
	return out
}

// sameBatches compares ignoring nil-vs-empty slice differences.
func sameBatches(t *testing.T, got, want []Batch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d batches, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Seq != w.Seq ||
			!reflect.DeepEqual(append([]graph.Label{}, g.AddVertices...), append([]graph.Label{}, w.AddVertices...)) ||
			!reflect.DeepEqual(append([]graph.Edge{}, g.AddEdges...), append([]graph.Edge{}, w.AddEdges...)) ||
			!reflect.DeepEqual(append([]graph.Edge{}, g.RemoveEdges...), append([]graph.Edge{}, w.RemoveEdges...)) {
			t.Fatalf("batch %d mismatch:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

func mustOpen(t *testing.T, path string, opt Options) (*Log, ReplayInfo) {
	t.Helper()
	l, info, err := Open(path, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { l.Close() })
	return l, info
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	batches := testBatches(7)

	l, info := mustOpen(t, path, Options{BaseDigest: testBase})
	if len(info.Batches) != 0 || info.Truncated {
		t.Fatalf("fresh log replayed %+v", info)
	}
	for _, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatalf("Append(seq=%d): %v", b.Seq, err)
		}
	}
	if l.LastSeq() != 7 {
		t.Fatalf("LastSeq = %d, want 7", l.LastSeq())
	}
	st, _ := os.Stat(path)
	if l.Size() != st.Size() {
		t.Fatalf("Size() = %d, file is %d", l.Size(), st.Size())
	}
	l.Close()

	l2, info2 := mustOpen(t, path, Options{BaseDigest: testBase})
	if info2.Truncated {
		t.Fatalf("clean reopen reported truncation: %+v", info2)
	}
	sameBatches(t, info2.Batches, batches)
	if l2.LastSeq() != 7 {
		t.Fatalf("reopened LastSeq = %d, want 7", l2.LastSeq())
	}
	// Appends continue after replay.
	if err := l2.Append(Batch{Seq: 8, AddEdges: []graph.Edge{{From: 0, To: 1}}}); err != nil {
		t.Fatalf("post-replay Append: %v", err)
	}
}

func TestBaseDigestMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := mustOpen(t, path, Options{BaseDigest: testBase})
	if err := l.Append(Batch{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, _, err := Open(path, Options{BaseDigest: testBase + 1})
	if !errors.Is(err, ErrBaseMismatch) {
		t.Fatalf("Open with wrong base = %v, want ErrBaseMismatch", err)
	}
}

func TestSeqMustAdvance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := mustOpen(t, path, Options{BaseDigest: testBase})
	if err := l.Append(Batch{Seq: 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Batch{Seq: 3}); err == nil {
		t.Fatal("duplicate seq accepted")
	}
	if err := l.Append(Batch{Seq: 2}); err == nil {
		t.Fatal("regressing seq accepted")
	}
	l.SetLastSeq(10)
	if err := l.Append(Batch{Seq: 10}); err == nil {
		t.Fatal("seq at floor accepted")
	}
	if err := l.Append(Batch{Seq: 11}); err != nil {
		t.Fatalf("seq above floor rejected: %v", err)
	}
}

// TestCrashAtEveryBytePoint is the crash matrix for the append path: a
// valid log is cut to EVERY possible prefix length (kill -9 can stop the
// kernel mid-write at any byte), and each reopen must recover exactly the
// batches whose records fit the prefix, truncating the rest.
func TestCrashAtEveryBytePoint(t *testing.T) {
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden")
	batches := testBatches(4)

	l, _ := mustOpen(t, golden, Options{BaseDigest: testBase})
	// Record the end offset of every durable record so we know, for each
	// prefix length, which batches must survive.
	bounds := []int64{l.Size()} // after header, before batch 0
	for _, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, l.Size())
	}
	l.Close()
	full, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}

	for cut := int64(0); cut <= int64(len(full)); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d", cut))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, info, err := Open(path, Options{BaseDigest: testBase})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		// How many batches end at or before the cut?
		want := 0
		for want < len(batches) && bounds[want+1] <= cut {
			want++
		}
		sameBatches(t, info.Batches, batches[:want])
		// cut=0 is an empty file, indistinguishable from (and treated as) a
		// log that never existed; every other short prefix is a torn tail.
		wantTrunc := cut != bounds[want] && cut != 0
		if info.Truncated != wantTrunc {
			t.Fatalf("cut=%d: Truncated = %v, want %v (dropped=%d)", cut, info.Truncated, wantTrunc, info.DroppedBytes)
		}
		wantDropped := cut - bounds[want]
		if cut < headerLen {
			wantDropped = cut // torn header: the whole stub is discarded
		}
		if wantTrunc && info.DroppedBytes != wantDropped {
			t.Fatalf("cut=%d: DroppedBytes = %d, want %d", cut, info.DroppedBytes, wantDropped)
		}
		// The healed log must accept appends and reopen cleanly.
		if err := l2.Append(Batch{Seq: uint64(want) + 1, AddEdges: []graph.Edge{{From: 9, To: 9}}}); err != nil {
			t.Fatalf("cut=%d: append after heal: %v", cut, err)
		}
		l2.Close()
		_, info3, err := Open(path, Options{BaseDigest: testBase})
		if err != nil {
			t.Fatalf("cut=%d: reopen after heal: %v", cut, err)
		}
		if info3.Truncated || len(info3.Batches) != want+1 {
			t.Fatalf("cut=%d: healed log replayed %d batches (trunc=%v), want %d", cut, len(info3.Batches), info3.Truncated, want+1)
		}
	}
}

// TestAppendFailureAtEveryBudget drives the in-process failure path: the
// write errors after N bytes (full disk / pulled device), Append must
// report the error, heal the file, and a hook-free reopen must see exactly
// the batches that were acknowledged.
func TestAppendFailureAtEveryBudget(t *testing.T) {
	dir := t.TempDir()
	batches := testBatches(3)

	// Measure total record bytes with a clean run.
	clean := filepath.Join(dir, "clean")
	l, _ := mustOpen(t, clean, Options{BaseDigest: testBase})
	for _, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	total := l.Size() - headerLen
	l.Close()

	for budget := int64(0); budget < total; budget++ {
		path := filepath.Join(dir, fmt.Sprintf("budget-%d", budget))
		l2, _, err := Open(path, Options{
			BaseDigest: testBase,
			Hooks:      Hooks{WrapWriter: func(w io.Writer) io.Writer { return faultio.FailWriter(w, budget) }},
		})
		if err != nil {
			t.Fatalf("budget=%d: Open: %v", budget, err)
		}
		acked := 0
		for _, b := range batches {
			if err := l2.Append(b); err != nil {
				if !errors.Is(err, faultio.ErrInjected) {
					t.Fatalf("budget=%d: append error %v, want injected", budget, err)
				}
				break
			}
			acked++
		}
		if acked == len(batches) {
			t.Fatalf("budget=%d (< total %d): all appends succeeded", budget, total)
		}
		l2.Close()

		_, info, err := Open(path, Options{BaseDigest: testBase})
		if err != nil {
			t.Fatalf("budget=%d: reopen: %v", budget, err)
		}
		if info.Truncated {
			t.Fatalf("budget=%d: failed append left a torn tail (Append should have healed it)", budget)
		}
		sameBatches(t, info.Batches, batches[:acked])
	}
}

// TestLyingDiskShortWrite models a disk that acknowledges writes it drops:
// the process believes the batch is durable, the crash proves otherwise.
// Recovery must still be prefix-closed — every recovered batch is genuine
// and in order, nothing after the first lost byte survives.
func TestLyingDiskShortWrite(t *testing.T) {
	dir := t.TempDir()
	batches := testBatches(3)

	clean := filepath.Join(dir, "clean")
	l, _ := mustOpen(t, clean, Options{BaseDigest: testBase})
	for _, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	total := l.Size() - headerLen
	l.Close()

	for budget := int64(0); budget < total; budget += 7 {
		path := filepath.Join(dir, fmt.Sprintf("lying-%d", budget))
		l2, _, err := Open(path, Options{
			BaseDigest: testBase,
			Hooks:      Hooks{WrapWriter: func(w io.Writer) io.Writer { return faultio.ShortWriter(w, budget) }},
		})
		if err != nil {
			t.Fatalf("budget=%d: Open: %v", budget, err)
		}
		for _, b := range batches {
			if err := l2.Append(b); err != nil {
				t.Fatalf("budget=%d: lying disk surfaced error %v", budget, err)
			}
		}
		l2.Close()

		_, info, err := Open(path, Options{BaseDigest: testBase})
		if err != nil {
			t.Fatalf("budget=%d: reopen: %v", budget, err)
		}
		// Prefix-closed: recovered batches must be exactly the leading run
		// that fit in the budget.
		sameBatches(t, info.Batches, batches[:len(info.Batches)])
		if len(info.Batches) == len(batches) {
			t.Fatalf("budget=%d (< total %d): nothing lost?", budget, total)
		}
	}
}

func TestFsyncFailureBreaksLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := mustOpen(t, path, Options{BaseDigest: testBase})
	l.Close()

	l2, _, err := Open(path, Options{
		BaseDigest: testBase,
		Hooks:      Hooks{Fsync: faultio.FsyncError},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	err = l2.Append(Batch{Seq: 1})
	if !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("append with failing fsync = %v, want injected", err)
	}
	// The heal-truncate also fsyncs, which also fails → the log must wedge
	// itself rather than risk appending after unverified bytes.
	if err := l2.Append(Batch{Seq: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on broken log = %v, want ErrClosed", err)
	}
	l2.Close()

	// A batch whose fsync failed was never acknowledged; replay owes nothing.
	_, info, err := Open(path, Options{BaseDigest: testBase})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(info.Batches) != 0 {
		t.Fatalf("unacknowledged batch resurfaced: %+v", info.Batches)
	}
}

func TestResetCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := mustOpen(t, path, Options{BaseDigest: testBase})
	for _, b := range testBatches(5) {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if l.Size() != headerLen {
		t.Fatalf("Size after Reset = %d, want %d", l.Size(), headerLen)
	}
	// Seq numbering continues across compaction.
	if err := l.Append(Batch{Seq: 5}); err == nil {
		t.Fatal("Reset rewound the sequence floor")
	}
	if err := l.Append(Batch{Seq: 6, AddEdges: []graph.Edge{{From: 1, To: 2}}}); err != nil {
		t.Fatalf("append after Reset: %v", err)
	}
	l.Close()

	// Reopen sees only the post-compaction tail; the snapshot's WALSeq
	// restores the floor via SetLastSeq.
	l2, info := mustOpen(t, path, Options{BaseDigest: testBase})
	if len(info.Batches) != 1 || info.Batches[0].Seq != 6 {
		t.Fatalf("replay after compaction = %+v, want only seq 6", info.Batches)
	}
	l2.SetLastSeq(6)
	if l2.LastSeq() != 6 {
		t.Fatalf("LastSeq = %d, want 6", l2.LastSeq())
	}
}

func TestSeqGapIsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := mustOpen(t, path, Options{BaseDigest: testBase})
	if err := l.Append(Batch{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Batch{Seq: 3}); err != nil { // gap: 2 missing
		t.Fatal(err)
	}
	l.Close()
	_, _, err := Open(path, Options{BaseDigest: testBase})
	if !errors.Is(err, ErrBadLog) {
		t.Fatalf("gapped log opened: %v, want ErrBadLog", err)
	}
}

func TestCorruptRecordTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	batches := testBatches(3)
	l, _ := mustOpen(t, path, Options{BaseDigest: testBase})
	var boundAfterFirst int64
	for i, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			boundAfterFirst = l.Size()
		}
	}
	l.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the second record's payload: CRC catches it,
	// replay keeps batch 1 and truncates from the damage on.
	if err := os.WriteFile(path, faultio.Flip(data, int(boundAfterFirst)+8), 0o644); err != nil {
		t.Fatal(err)
	}
	_, info, err := Open(path, Options{BaseDigest: testBase})
	if err != nil {
		t.Fatalf("Open flipped log: %v", err)
	}
	if !info.Truncated {
		t.Fatal("bit rot not reported as truncation")
	}
	sameBatches(t, info.Batches, batches[:1])
}

func TestTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	if err := os.WriteFile(path, []byte("BIGW\x01\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, info, err := Open(path, Options{BaseDigest: testBase})
	if err != nil {
		t.Fatalf("Open torn-header log: %v", err)
	}
	defer l.Close()
	if !info.Truncated || len(info.Batches) != 0 {
		t.Fatalf("torn header recovery = %+v", info)
	}
	if err := l.Append(Batch{Seq: 1}); err != nil {
		t.Fatalf("append after header reinit: %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	if err := os.WriteFile(path, append([]byte("NOPE"), make([]byte, 12)...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(path, Options{BaseDigest: testBase})
	if !errors.Is(err, ErrBadLog) {
		t.Fatalf("bad magic opened: %v", err)
	}
}

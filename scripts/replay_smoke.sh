#!/usr/bin/env bash
# End-to-end capture/replay smoke: start bigindexd with a query log, drive a
# small workload against the demo preset, shut the daemon down cleanly (the
# deferred Close flushes the log), replay the capture with benchrunner, and
# assert the calibration report landed. CI runs this after the test suite;
# it is also handy locally:
#
#   scripts/replay_smoke.sh [query-count]
set -euo pipefail

n=${1:-50}
workdir=$(mktemp -d)
addr=127.0.0.1:18080
qlog="$workdir/qlog.jsonl"
replay_json="$workdir/BENCH_replay.json"

cleanup() {
  [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/bigindexd" ./cmd/bigindexd
go build -o "$workdir/benchrunner" ./cmd/benchrunner

"$workdir/bigindexd" -preset demo -addr "$addr" \
  -query-log "$qlog" -trace-sample 1 -debug-endpoints \
  >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

for _ in $(seq 1 100); do
  curl -fsS "http://$addr/readyz" >/dev/null 2>&1 && break
  kill -0 "$daemon_pid" 2>/dev/null || { cat "$workdir/daemon.log" >&2; exit 1; }
  sleep 0.2
done
curl -fsS "http://$addr/readyz" >/dev/null

# Two-keyword queries over the head of the Zipf vocabulary (demo/term/0 is
# the most frequent); nocache keeps every request a real evaluation so the
# capture is all replayable samples.
algos=(blinks bkws bidir rclique)
for i in $(seq 1 "$n"); do
  a=$((i % 12)) b=$(((i * 7) % 12))
  [ "$a" = "$b" ] && b=$(((b + 1) % 12))
  algo=${algos[$((i % 4))]}
  curl -fsS "http://$addr/query?q=demo/term/$a,demo/term/$b&algo=$algo&k=5&nocache=1" >/dev/null
done

# The captured ledger must already be visible server-side.
curl -fsS "http://$addr/debug/costmodel" | grep -q '"total_samples"'

# SIGTERM -> graceful drain -> deferred QueryLog.Close flushes the buffer.
kill -TERM "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=

[ -s "$qlog" ] || { echo "query log $qlog is empty" >&2; exit 1; }
captured=$(wc -l <"$qlog")
echo "captured $captured query-log entries"

(cd "$workdir" && ./benchrunner -exp replay -workload "$qlog" -workload-dataset demo \
  -json "" -replay-json "$replay_json")

[ -s "$replay_json" ] || { echo "$replay_json missing or empty" >&2; exit 1; }
grep -q '"id": *"replay"' "$replay_json"
grep -q '"rows"' "$replay_json"
echo "replay smoke OK: $captured captured, report at $replay_json"

#!/usr/bin/env bash
# Sharded-execution smoke: run the shard benchmark on the tiny demo preset
# with a sequential baseline plus 1- and 4-worker coordinators. RunShard
# itself enforces the contract — the FNV digest over every observable match
# field must be byte-identical across worker counts, and a mismatch is an
# experiment *error*, not a report note — so a zero exit is the assertion.
# CI runs this after the test suite; it is also handy locally:
#
#   scripts/shard_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
shard_json="$workdir/BENCH_shard.json"
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/benchrunner" ./cmd/benchrunner

"$workdir/benchrunner" -exp shard -shard-dataset demo -shard-workers 1,4 \
  -json "" -shard-json "$shard_json"

[ -s "$shard_json" ] || { echo "$shard_json missing or empty" >&2; exit 1; }
grep -q '"id": *"shard"' "$shard_json"
# Both algorithms must have run their sequential baseline and both worker
# counts: 2 algos x (seq + shard-1 + shard-4).
for mode in baseline shard-1 shard-4; do
  n=$(grep -c "\"$mode\"" "$shard_json")
  [ "$n" -eq 2 ] || { echo "expected 2 '$mode' rows, got $n" >&2; exit 1; }
done
# The export must carry the environment needed to interpret the speedups.
grep -q '"gomaxprocs"' "$shard_json"
grep -q '"shard_workers"' "$shard_json"
echo "shard smoke OK: digests identical across worker counts, report at $shard_json"

#!/usr/bin/env bash
# Distributed-serving chaos smoke: a coordinator over two real shard
# server processes (blocks split 0%2 / 1%2, no replication), killed and
# revived under load. Asserts the full degradation contract end to end:
#
#   1. healthy fleet answers byte-identically to a single-process daemon;
#   2. SIGKILL of one shard mid-load still yields HTTP 200 inside the
#      query deadline, marked "degraded":true with reason "shards" and a
#      coverage block whose lost-block count is honest (> 0, < total);
#   3. /readyz stays 200 while any block is still reachable;
#   4. after the shard restarts, answers return to byte-identical healthy
#      form on their own (breaker half-open probe) and were never served
#      from a poisoned cache;
#   5. with telemetry at sample rate 1, the flight recorder holds a
#      stitched multi-process trace: the coordinator's span tree contains
#      remote:expand spans grafted from the (restarted) shard processes;
#   6. /debug/fleet reports both peers with negotiated telemetry and live
#      Stats-RPC counters;
#   7. the fleetobs bench gate passes on the demo dataset (telemetry
#      overhead budget + byte-identical digests across sampling modes).
#
# CI runs this next to shard_smoke.sh; it is also handy locally:
#
#   scripts/shardnet_chaos_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
coord=127.0.0.1:18085
local_addr=127.0.0.1:18086
shard_a=127.0.0.1:18087
shard_b=127.0.0.1:18088

cleanup() {
  for pid in "${coord_pid:-}" "${local_pid:-}" "${shard_a_pid:-}" "${shard_b_pid:-}" "${shard_b2_pid:-}"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

dump_logs() { tail -40 "$workdir"/*.log >&2 || true; }

go build -o "$workdir/bigindexd" ./cmd/bigindexd

wait_tcp() {
  local host=${1%:*} port=${1#*:}
  for _ in $(seq 1 150); do
    (exec 3<>"/dev/tcp/$host/$port") 2>/dev/null && return 0
    sleep 0.2
  done
  echo "$1 never started accepting" >&2
  dump_logs
  exit 1
}

wait_ready() {
  for _ in $(seq 1 150); do
    curl -fsS "http://$1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "$1/readyz never turned 200" >&2
  dump_logs
  exit 1
}

# normalize strips the one legitimately nondeterministic response field.
normalize() { grep -v '"elapsed"'; }

"$workdir/bigindexd" -preset demo -shard-serve "$shard_a" -shard-blocks '0%2' \
  >>"$workdir/shard_a.log" 2>&1 &
shard_a_pid=$!
"$workdir/bigindexd" -preset demo -shard-serve "$shard_b" -shard-blocks '1%2' \
  >>"$workdir/shard_b.log" 2>&1 &
shard_b_pid=$!
wait_tcp "$shard_a"
wait_tcp "$shard_b"

# The coordinator runs with telemetry fully on (debug endpoints, trace
# everything, sample every shard RPC): the byte-equality assertions below
# double as the "telemetry never changes answers" invariant.
"$workdir/bigindexd" -preset demo -addr "$coord" \
  -shard-peers "$shard_a=0%2;$shard_b=1%2" \
  -debug-endpoints -trace-sample 1 -shard-telemetry-sample 1 \
  >>"$workdir/coord.log" 2>&1 &
coord_pid=$!
"$workdir/bigindexd" -preset demo -addr "$local_addr" \
  >>"$workdir/local.log" 2>&1 &
local_pid=$!
wait_ready "$coord"
wait_ready "$local_addr"

# demo/term/0 and demo/term/2 co-occur within the search radius (term/0
# with term/1 does not), so the answer set is non-empty and the
# byte-equality assertions below actually compare content.
q='query?q=demo/term/0,demo/term/2&algo=bkws&layer=0&k=5&nocache=1&timeout=10s'

# 1. Healthy fleet == single-process daemon, byte for byte.
healthy=$(curl -fsS "http://$coord/$q" | normalize)
echo "$healthy" | grep -Eq '"count": *[1-9]' || { echo "healthy query returned no matches; smoke would be vacuous" >&2; dump_logs; exit 1; }
echo "$healthy" | grep -q '"degraded"' && { echo "healthy fleet degraded" >&2; dump_logs; exit 1; }
single=$(curl -fsS "http://$local_addr/$q" | normalize)
[ "$healthy" = "$single" ] || {
  echo "distributed answer differs from single-process" >&2
  diff <(echo "$single") <(echo "$healthy") >&2 || true
  exit 1
}

# 2. SIGKILL one shard mid-load: background queries are in flight when the
# process dies; the next foreground query must degrade honestly, in time.
load_pids=()
for _ in $(seq 1 5); do
  curl -fsS "http://$coord/$q" >/dev/null 2>&1 &
  load_pids+=("$!")
done
kill -9 "$shard_b_pid"
wait "$shard_b_pid" 2>/dev/null || true
wait "${load_pids[@]}" 2>/dev/null || true # drain the background load
degraded=$(curl -fsS --max-time 15 "http://$coord/$q")
echo "$degraded" | grep -Eq '"degraded": *true'             || { echo "no degraded flag after kill" >&2; dump_logs; exit 1; }
echo "$degraded" | grep -Eq '"degraded_reason": *"shards"'  || { echo "wrong degraded reason" >&2; exit 1; }
echo "$degraded" | grep -Eq '"blocks_lost": *[1-9]'         || { echo "coverage claims no lost blocks" >&2; exit 1; }
echo "$degraded" | grep -Eq '"fraction": *0\.'              || { echo "coverage fraction not in (0,1)" >&2; exit 1; }
echo "$degraded" | tr -d ' \n' | grep -q "\"failed_peers\":\[[^]]*$shard_b" \
  || { echo "degraded response does not attribute the dead peer $shard_b" >&2; dump_logs; exit 1; }

# 3. Half the fleet is gone but half still answers: the coordinator must
# stay ready (draining it would amplify the outage).
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$coord/readyz")
[ "$code" = 200 ] || { echo "readyz $code with half the fleet alive, want 200" >&2; exit 1; }

# 4. Restart the dead shard on the same address: answers must return to
# the byte-identical healthy form on their own.
"$workdir/bigindexd" -preset demo -shard-serve "$shard_b" -shard-blocks '1%2' \
  >>"$workdir/shard_b2.log" 2>&1 &
shard_b2_pid=$!
wait_tcp "$shard_b"
recovered=""
for _ in $(seq 1 60); do
  resp=$(curl -fsS "http://$coord/$q" | normalize)
  if ! echo "$resp" | grep -q '"degraded"'; then recovered=$resp; break; fi
  sleep 0.5
done
[ -n "$recovered" ] || { echo "no recovery after shard restart" >&2; dump_logs; exit 1; }
[ "$recovered" = "$healthy" ] || {
  echo "post-recovery answer differs from healthy baseline" >&2
  diff <(echo "$healthy") <(echo "$recovered") >&2 || true
  exit 1
}

# 5. Stitched multi-process trace: the recovered query above ran with
# trace-sample 1 and shard-telemetry-sample 1, so the flight recorder
# must hold a trace whose span tree contains remote:expand spans grafted
# from the shard processes — including the restarted one.
stitched=""
for _ in $(seq 1 20); do
  curl -fsS "http://$coord/$q" >/dev/null
  for id in $(curl -fsS "http://$coord/debug/traces?limit=10" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p'); do
    tree=$(curl -fsS "http://$coord/debug/traces/$id" || true)
    if echo "$tree" | grep -q '"remote:expand"'; then stitched=$tree; break 2; fi
  done
  sleep 0.2
done
[ -n "$stitched" ] || { echo "no stitched trace with remote:expand spans in the flight recorder" >&2; dump_logs; exit 1; }
echo "$stitched" | grep -q '"rpc:expand"' || { echo "stitched trace lacks the client-side rpc:expand span" >&2; exit 1; }
echo "$stitched" | grep -q "\"peer\": *\"$shard_a\"\|\"peer\": *\"$shard_b\"" \
  || { echo "stitched trace lacks peer attribution" >&2; exit 1; }
echo "$stitched" | grep -q '"remote_calls"' || { echo "stitched trace ledger lacks fleet-summed remote cost" >&2; exit 1; }

# 6. /debug/fleet: both peers present, telemetry negotiated, live stats.
fleet=$(curl -fsS "http://$coord/debug/fleet")
echo "$fleet" | grep -q "\"addr\": *\"$shard_a\"" || { echo "fleet view missing $shard_a" >&2; dump_logs; exit 1; }
echo "$fleet" | grep -q "\"addr\": *\"$shard_b\"" || { echo "fleet view missing $shard_b" >&2; dump_logs; exit 1; }
echo "$fleet" | grep -q '"telemetry": *true'      || { echo "fleet view shows no negotiated telemetry" >&2; exit 1; }
echo "$fleet" | grep -Eq '"expands": *[1-9]'      || { echo "fleet view has no live Stats counters" >&2; exit 1; }

# 7. Telemetry overhead + answer-identity gate on the demo dataset.
go run ./cmd/benchrunner -exp fleetobs -fleetobs-dataset demo \
  -json "" -fleetobs-json "$workdir/BENCH_fleetobs.json" >>"$workdir/fleetobs.log" 2>&1 \
  || { echo "fleetobs bench gate failed" >&2; tail -30 "$workdir/fleetobs.log" >&2; exit 1; }
grep -q '"fleetobs"' "$workdir/BENCH_fleetobs.json" || { echo "BENCH_fleetobs.json missing fleetobs report" >&2; exit 1; }

echo "shardnet chaos smoke OK: kill degraded honestly (200 + coverage + peer attribution), readiness held, restart restored byte-identical answers, stitched multi-process trace + fleet view + telemetry overhead gate"

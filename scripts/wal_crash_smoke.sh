#!/usr/bin/env bash
# End-to-end WAL crash smoke: start bigindexd with a write-ahead log and an
# admin token, mutate the live graph through POST /admin/edges, kill the
# daemon with SIGKILL (no drain, no compaction), restart it, and assert the
# reborn process converged: same mutation sequence, same graph shape, and a
# byte-identical query answer. Then prove the write path survived recovery
# (another batch + a manual compaction). CI runs this next to
# replay_smoke.sh; it is also handy locally:
#
#   scripts/wal_crash_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
addr=127.0.0.1:18081
token=smoke-secret
wal="$workdir/mutations.wal"
snap="$workdir/index.snap"

cleanup() {
  [ -n "${daemon_pid:-}" ] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/bigindexd" ./cmd/bigindexd

start_daemon() {
  "$workdir/bigindexd" -preset demo -addr "$addr" \
    -wal "$wal" -snapshot "$snap" -admin-token "$token" \
    >>"$workdir/daemon.log" 2>&1 &
  daemon_pid=$!
  for _ in $(seq 1 150); do
    curl -fsS "http://$addr/readyz" >/dev/null 2>&1 && return 0
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$workdir/daemon.log" >&2; exit 1; }
    sleep 0.2
  done
  echo "daemon never became ready" >&2
  cat "$workdir/daemon.log" >&2
  exit 1
}

# normalize strips the one legitimately nondeterministic response field.
normalize() { grep -v '"elapsed"'; }

start_daemon

# The admin surface must be POST-only and token-gated.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/admin/edges")
[ "$code" = 405 ] || { echo "GET /admin/edges returned $code, want 405" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/admin/edges" -d '{}')
[ "$code" = 401 ] || { echo "unauthenticated mutation returned $code, want 401" >&2; exit 1; }

# One batch: a new vertex (existing label -> id = current |V|) plus an edge
# from it into the graph. Acknowledged means fsynced to the WAL.
n0=$(curl -fsS "http://$addr/stats" | grep -m1 '"Vertices"' | tr -dc '0-9')
body=$(printf '{"add_vertices":["demo/term/0"],"add_edges":[{"from":%d,"to":0}]}' "$n0")
resp=$(curl -fsS -X POST -H "X-Admin-Token: $token" -d "$body" "http://$addr/admin/edges")
echo "$resp" | grep -q '"status": *"applied"' || { echo "mutation not applied: $resp" >&2; exit 1; }
echo "$resp" | grep -Eq '"seq": *1,' || { echo "unexpected seq: $resp" >&2; exit 1; }

pre_query=$(curl -fsS "http://$addr/query?q=demo/term/0&algo=blinks&k=5&nocache=1" | normalize)
pre_vertices=$(curl -fsS "http://$addr/stats" | grep -m1 '"Vertices"' | tr -dc '0-9')
[ "$pre_vertices" = "$((n0 + 1))" ] || { echo "vertex count $pre_vertices, want $((n0 + 1))" >&2; exit 1; }

# kill -9: no drain, no compaction. The snapshot on disk predates the
# batch; only the WAL knows about it.
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=

start_daemon

# Convergence: replay restored the sequence, the graph, and the answers.
post_vertices=$(curl -fsS "http://$addr/stats" | grep -m1 '"Vertices"' | tr -dc '0-9')
[ "$post_vertices" = "$pre_vertices" ] || { echo "replayed |V| $post_vertices, want $pre_vertices" >&2; exit 1; }
seq=$(curl -fsS "http://$addr/stats" | grep -m1 '"seq"' | tr -dc '0-9')
[ "$seq" = 1 ] || { echo "mutation seq $seq, want 1" >&2; exit 1; }
post_query=$(curl -fsS "http://$addr/query?q=demo/term/0&algo=blinks&k=5&nocache=1" | normalize)
[ "$post_query" = "$pre_query" ] || {
  echo "query answers diverged after crash recovery" >&2
  echo "before: $pre_query" >&2
  echo "after:  $post_query" >&2
  exit 1
}

# The write path survived recovery: another batch continues the sequence,
# and a manual compaction folds the log into the snapshot.
body=$(printf '{"add_edges":[{"from":%d,"to":1}]}' "$n0")
resp=$(curl -fsS -X POST -H "X-Admin-Token: $token" -d "$body" "http://$addr/admin/edges")
echo "$resp" | grep -Eq '"seq": *2,' || { echo "post-recovery mutation failed: $resp" >&2; exit 1; }
pre_wal=$(wc -c <"$wal")
resp=$(curl -fsS -X POST -H "Authorization: Bearer $token" "http://$addr/admin/compact")
echo "$resp" | grep -Eq '"covered_seq": *2,' || { echo "compaction failed: $resp" >&2; exit 1; }
post_wal=$(wc -c <"$wal")
[ "$post_wal" -lt "$pre_wal" ] || { echo "WAL not truncated ($pre_wal -> $post_wal)" >&2; exit 1; }

# Final restart: boots from the compacted snapshot with nothing to replay.
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=
start_daemon
seq=$(curl -fsS "http://$addr/stats" | grep -m1 '"seq"' | tr -dc '0-9')
[ "$seq" = 2 ] || { echo "compacted seq $seq, want 2" >&2; exit 1; }

echo "WAL crash smoke passed: mutate -> kill -9 -> replay converged, compaction covered seq 2"
